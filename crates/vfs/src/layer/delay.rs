//! [`DelayLayer`]: deterministic per-op virtual-time latency injection.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use simclock::{ActorClock, Bandwidth, SimTime};

use super::Layer;
use crate::{Fd, FileSystem, IoResult, Metadata, OpenFlags};

/// Per-op-kind latency model of a [`DelayLayer`].
///
/// Each field is a fixed virtual-time charge added **before** the inner
/// call; `read_bandwidth`/`write_bandwidth` additionally charge a
/// size-proportional transfer time for `pread`/`pwrite` payloads (the HPC
/// I/O-modelling knob: device latency = fixed cost + bytes / bandwidth).
/// The default profile is all-zero — fully inert.
#[derive(Debug, Clone, Copy, Default)]
pub struct DelayProfile {
    /// Added to `open`.
    pub open: SimTime,
    /// Added to `close`.
    pub close: SimTime,
    /// Added to `pread`.
    pub pread: SimTime,
    /// Added to `pwrite`.
    pub pwrite: SimTime,
    /// Added to `fsync` and `sync`.
    pub fsync: SimTime,
    /// Added to `ftruncate`.
    pub ftruncate: SimTime,
    /// Added to `stat` and `fstat`.
    pub stat: SimTime,
    /// Added to `unlink`, `rename` and `list_dir`.
    pub path_op: SimTime,
    /// Size-proportional extra charge on `pread` payloads.
    pub read_bandwidth: Option<Bandwidth>,
    /// Size-proportional extra charge on `pwrite` payloads.
    pub write_bandwidth: Option<Bandwidth>,
}

/// Deterministic snapshot of a [`DelayLayer`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DelayStats {
    /// Operations that received a non-zero injected delay.
    pub ops_delayed: u64,
    /// Total virtual time injected.
    pub injected: SimTime,
}

#[derive(Debug, Default)]
struct DelayState {
    ops_delayed: AtomicU64,
    injected_ns: AtomicU64,
}

/// A [`Layer`] charging a deterministic virtual-time latency per operation.
///
/// The delay is a plain [`ActorClock::advance`] before forwarding: it
/// composes with the inner backend's own cost model and is exactly
/// reproducible run-to-run (no randomness, no wall clock). With the
/// all-zero [`DelayProfile`] the layer is inert — it never touches the
/// clock and keeps its counters at zero.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use simclock::{ActorClock, SimTime};
/// use vfs::{DelayLayer, Layer, MemFs, OpenFlags};
///
/// let layer = DelayLayer::fixed(SimTime::from_micros(10));
/// let fs = layer.wrap(Arc::new(MemFs::new()));
/// let clock = ActorClock::new();
/// let before = clock.now();
/// fs.open("/x", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
/// assert!(clock.now() - before >= SimTime::from_micros(10));
/// assert_eq!(layer.stats().ops_delayed, 1);
/// ```
#[derive(Debug)]
pub struct DelayLayer {
    profile: DelayProfile,
    state: Arc<DelayState>,
}

impl DelayLayer {
    /// A layer with the given latency profile.
    pub fn new(profile: DelayProfile) -> Self {
        DelayLayer { profile, state: Arc::new(DelayState::default()) }
    }

    /// The inert configuration: all delays zero, a pure call-forwarder.
    pub fn inert() -> Self {
        Self::new(DelayProfile::default())
    }

    /// A uniform fixed latency on every operation (no bandwidth term).
    pub fn fixed(per_op: SimTime) -> Self {
        Self::new(DelayProfile {
            open: per_op,
            close: per_op,
            pread: per_op,
            pwrite: per_op,
            fsync: per_op,
            ftruncate: per_op,
            stat: per_op,
            path_op: per_op,
            read_bandwidth: None,
            write_bandwidth: None,
        })
    }

    /// The latency profile this layer injects.
    pub fn profile(&self) -> &DelayProfile {
        &self.profile
    }

    /// Deterministic counters: ops delayed and total injected time.
    pub fn stats(&self) -> DelayStats {
        DelayStats {
            ops_delayed: self.state.ops_delayed.load(Ordering::Acquire),
            injected: SimTime::from_nanos(self.state.injected_ns.load(Ordering::Acquire)),
        }
    }
}

impl Layer for DelayLayer {
    fn name(&self) -> &str {
        "delay"
    }

    fn wrap(&self, inner: Arc<dyn FileSystem>) -> Arc<dyn FileSystem> {
        Arc::new(DelayFs {
            name: format!("delay({})", inner.name()),
            profile: self.profile,
            state: Arc::clone(&self.state),
            inner,
        })
    }
}

struct DelayFs {
    name: String,
    profile: DelayProfile,
    state: Arc<DelayState>,
    inner: Arc<dyn FileSystem>,
}

impl DelayFs {
    fn delay(&self, fixed: SimTime, bw: Option<(Bandwidth, u64)>, clock: &ActorClock) {
        let total = fixed + bw.map_or(SimTime::ZERO, |(b, n)| b.time_for(n));
        if total > SimTime::ZERO {
            clock.advance(total);
            self.state.ops_delayed.fetch_add(1, Ordering::AcqRel);
            self.state.injected_ns.fetch_add(total.as_nanos(), Ordering::AcqRel);
        }
    }
}

impl FileSystem for DelayFs {
    fn name(&self) -> &str {
        &self.name
    }

    fn open(&self, path: &str, flags: OpenFlags, clock: &ActorClock) -> IoResult<Fd> {
        self.delay(self.profile.open, None, clock);
        self.inner.open(path, flags, clock)
    }

    fn close(&self, fd: Fd, clock: &ActorClock) -> IoResult<()> {
        self.delay(self.profile.close, None, clock);
        self.inner.close(fd, clock)
    }

    fn pread(&self, fd: Fd, buf: &mut [u8], off: u64, clock: &ActorClock) -> IoResult<usize> {
        let bw = self.profile.read_bandwidth.map(|b| (b, buf.len() as u64));
        self.delay(self.profile.pread, bw, clock);
        self.inner.pread(fd, buf, off, clock)
    }

    fn pwrite(&self, fd: Fd, data: &[u8], off: u64, clock: &ActorClock) -> IoResult<usize> {
        let bw = self.profile.write_bandwidth.map(|b| (b, data.len() as u64));
        self.delay(self.profile.pwrite, bw, clock);
        self.inner.pwrite(fd, data, off, clock)
    }

    fn fsync(&self, fd: Fd, clock: &ActorClock) -> IoResult<()> {
        self.delay(self.profile.fsync, None, clock);
        self.inner.fsync(fd, clock)
    }

    fn ftruncate(&self, fd: Fd, len: u64, clock: &ActorClock) -> IoResult<()> {
        self.delay(self.profile.ftruncate, None, clock);
        self.inner.ftruncate(fd, len, clock)
    }

    fn fstat(&self, fd: Fd, clock: &ActorClock) -> IoResult<Metadata> {
        self.delay(self.profile.stat, None, clock);
        self.inner.fstat(fd, clock)
    }

    fn stat(&self, path: &str, clock: &ActorClock) -> IoResult<Metadata> {
        self.delay(self.profile.stat, None, clock);
        self.inner.stat(path, clock)
    }

    fn unlink(&self, path: &str, clock: &ActorClock) -> IoResult<()> {
        self.delay(self.profile.path_op, None, clock);
        self.inner.unlink(path, clock)
    }

    fn rename(&self, from: &str, to: &str, clock: &ActorClock) -> IoResult<()> {
        self.delay(self.profile.path_op, None, clock);
        self.inner.rename(from, to, clock)
    }

    fn list_dir(&self, dir: &str, clock: &ActorClock) -> IoResult<Vec<String>> {
        self.delay(self.profile.path_op, None, clock);
        self.inner.list_dir(dir, clock)
    }

    fn sync(&self, clock: &ActorClock) -> IoResult<()> {
        self.delay(self.profile.fsync, None, clock);
        self.inner.sync(clock)
    }

    fn simulate_power_failure(&self) {
        self.inner.simulate_power_failure();
    }

    fn synchronous_durability(&self) -> bool {
        self.inner.synchronous_durability()
    }

    fn durable_linearizability(&self) -> bool {
        self.inner.durable_linearizability()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemFs;

    #[test]
    fn inert_layer_never_touches_the_clock() {
        let layer = DelayLayer::inert();
        let fs = layer.wrap(Arc::new(MemFs::new()));
        let bare: Arc<dyn FileSystem> = Arc::new(MemFs::new());
        let (c1, c2) = (ActorClock::new(), ActorClock::new());
        for (fs, c) in [(&fs, &c1), (&bare, &c2)] {
            let fd = fs.open("/a", OpenFlags::RDWR | OpenFlags::CREATE, c).unwrap();
            fs.pwrite(fd, &[1; 1000], 0, c).unwrap();
            let mut buf = [0u8; 1000];
            fs.pread(fd, &mut buf, 0, c).unwrap();
            fs.fsync(fd, c).unwrap();
            fs.close(fd, c).unwrap();
        }
        assert_eq!(c1.now(), c2.now(), "inert delay layer must be virtual-time-identical");
        assert_eq!(layer.stats(), DelayStats::default());
    }

    #[test]
    fn delays_are_deterministic_and_counted() {
        let run = |layer: &DelayLayer| {
            let fs = layer.wrap(Arc::new(MemFs::new()));
            let c = ActorClock::new();
            let fd = fs.open("/a", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
            fs.pwrite(fd, &[9; 4096], 0, &c).unwrap();
            let mut buf = [0u8; 4096];
            fs.pread(fd, &mut buf, 0, &c).unwrap();
            fs.close(fd, &c).unwrap();
            c.now()
        };
        let a = DelayLayer::new(DelayProfile {
            pwrite: SimTime::from_micros(50),
            write_bandwidth: Some(Bandwidth::mib_per_sec(100.0)),
            ..DelayProfile::default()
        });
        let b = DelayLayer::new(DelayProfile {
            pwrite: SimTime::from_micros(50),
            write_bandwidth: Some(Bandwidth::mib_per_sec(100.0)),
            ..DelayProfile::default()
        });
        let (ta, tb) = (run(&a), run(&b));
        assert_eq!(ta, tb, "identical profiles must produce identical timelines");
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.stats().ops_delayed, 1, "only the pwrite was charged");
        // 50µs fixed + 4096 B at 100 MiB/s.
        let expected = SimTime::from_micros(50) + Bandwidth::mib_per_sec(100.0).time_for(4096);
        assert_eq!(a.stats().injected, expected);
    }
}
