use std::fmt;
use std::ops::{BitOr, BitOrAssign};

/// Open flags, modelled on the POSIX `O_*` constants.
///
/// Hand-rolled rather than via the `bitflags` crate (not in the approved
/// dependency set); the API follows the same conventions.
///
/// # Example
///
/// ```
/// use vfs::OpenFlags;
/// let f = OpenFlags::RDWR | OpenFlags::CREATE | OpenFlags::SYNC;
/// assert!(f.writable() && f.readable());
/// assert!(f.contains(OpenFlags::SYNC));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct OpenFlags(u32);

impl OpenFlags {
    /// Read-only access (`O_RDONLY`).
    pub const RDONLY: OpenFlags = OpenFlags(0);
    /// Write-only access (`O_WRONLY`).
    pub const WRONLY: OpenFlags = OpenFlags(1);
    /// Read-write access (`O_RDWR`).
    pub const RDWR: OpenFlags = OpenFlags(2);
    /// Create if missing (`O_CREAT`).
    pub const CREATE: OpenFlags = OpenFlags(1 << 2);
    /// Fail if it exists (`O_EXCL`, with CREATE).
    pub const EXCL: OpenFlags = OpenFlags(1 << 3);
    /// Truncate on open (`O_TRUNC`).
    pub const TRUNC: OpenFlags = OpenFlags(1 << 4);
    /// Append mode (`O_APPEND`).
    pub const APPEND: OpenFlags = OpenFlags(1 << 5);
    /// Synchronous writes: durable when the call returns (`O_SYNC`).
    pub const SYNC: OpenFlags = OpenFlags(1 << 6);
    /// Bypass the page cache where possible (`O_DIRECT`).
    pub const DIRECT: OpenFlags = OpenFlags(1 << 7);

    const ACCESS_MASK: u32 = 3;

    /// Whether this flag set contains all bits of `other`.
    pub fn contains(self, other: OpenFlags) -> bool {
        // Access mode is a 2-bit enum, not independent bits.
        if (other.0 & Self::ACCESS_MASK != 0 || other.0 == 0)
            && self.0 & Self::ACCESS_MASK != other.0 & Self::ACCESS_MASK
            && other.0 & !Self::ACCESS_MASK == 0
        {
            return false;
        }
        self.0 & other.0 == other.0
    }

    /// Whether reads are permitted.
    pub fn readable(self) -> bool {
        self.0 & Self::ACCESS_MASK != Self::WRONLY.0
    }

    /// Whether writes are permitted.
    pub fn writable(self) -> bool {
        let m = self.0 & Self::ACCESS_MASK;
        m == Self::WRONLY.0 || m == Self::RDWR.0
    }

    /// Whether the file is opened write-only (NVCache skips allocating a
    /// radix tree for these, paper §III "Open").
    pub fn write_only(self) -> bool {
        self.0 & Self::ACCESS_MASK == Self::WRONLY.0
    }

    /// Whether the file is opened read-only (NVCache bypasses the read cache
    /// entirely, paper §II-A).
    pub fn read_only(self) -> bool {
        self.0 & Self::ACCESS_MASK == Self::RDONLY.0
    }

    /// Returns these flags with the non-access bits of `other` removed
    /// (NVCache strips `O_SYNC` before opening the inner file: its own log
    /// already provides stronger durability).
    pub fn without(self, other: OpenFlags) -> OpenFlags {
        OpenFlags((self.0 & !(other.0 & !Self::ACCESS_MASK)) | (self.0 & Self::ACCESS_MASK))
    }
}

impl BitOr for OpenFlags {
    type Output = OpenFlags;
    fn bitor(self, rhs: OpenFlags) -> OpenFlags {
        OpenFlags(self.0 | rhs.0)
    }
}

impl BitOrAssign for OpenFlags {
    fn bitor_assign(&mut self, rhs: OpenFlags) {
        self.0 |= rhs.0;
    }
}

impl fmt::Display for OpenFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mode = match self.0 & Self::ACCESS_MASK {
            0 => "RDONLY",
            1 => "WRONLY",
            _ => "RDWR",
        };
        write!(f, "{mode}")?;
        for (bit, name) in [
            (Self::CREATE, "CREATE"),
            (Self::EXCL, "EXCL"),
            (Self::TRUNC, "TRUNC"),
            (Self::APPEND, "APPEND"),
            (Self::SYNC, "SYNC"),
            (Self::DIRECT, "DIRECT"),
        ] {
            if self.0 & bit.0 != 0 {
                write!(f, "|{name}")?;
            }
        }
        Ok(())
    }
}

/// File metadata as returned by `stat`/`fstat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Metadata {
    /// Device identifier.
    pub dev: u64,
    /// Inode number.
    pub ino: u64,
    /// File size in bytes.
    pub size: u64,
    /// Whether the path denotes a directory.
    pub is_dir: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_modes() {
        assert!(OpenFlags::RDONLY.readable());
        assert!(!OpenFlags::RDONLY.writable());
        assert!(OpenFlags::RDONLY.read_only());
        assert!(OpenFlags::WRONLY.writable());
        assert!(!OpenFlags::WRONLY.readable());
        assert!(OpenFlags::WRONLY.write_only());
        assert!(OpenFlags::RDWR.readable() && OpenFlags::RDWR.writable());
    }

    #[test]
    fn combination_and_contains() {
        let f = OpenFlags::RDWR | OpenFlags::CREATE | OpenFlags::SYNC;
        assert!(f.contains(OpenFlags::CREATE));
        assert!(f.contains(OpenFlags::SYNC));
        assert!(!f.contains(OpenFlags::DIRECT));
        assert!(!OpenFlags::RDONLY.contains(OpenFlags::CREATE));
    }

    #[test]
    fn display_lists_flags() {
        let f = OpenFlags::WRONLY | OpenFlags::CREATE | OpenFlags::DIRECT;
        assert_eq!(f.to_string(), "WRONLY|CREATE|DIRECT");
        assert_eq!(OpenFlags::RDONLY.to_string(), "RDONLY");
    }

    #[test]
    fn flags_with_mixed_access_are_not_contained() {
        let f = OpenFlags::WRONLY | OpenFlags::SYNC;
        assert!(!f.contains(OpenFlags::RDWR));
    }
}
