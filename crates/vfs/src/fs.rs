use std::fmt;

use simclock::ActorClock;

use crate::{IoResult, Metadata, OpenFlags};

/// A file descriptor handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fd(pub u64);

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fd{}", self.0)
    }
}

/// The libc/syscall boundary of the simulation.
///
/// Applications (the RocksDB/SQLite/FIO stand-ins) are written against this
/// trait, exactly as the paper's legacy applications are written against
/// POSIX. NVCache implements it by interposition: its implementation wraps an
/// inner `FileSystem` the way the patched musl wraps the kernel (paper §III,
/// Table III).
///
/// All operations are positional (`pread`/`pwrite`); cursor-based access is
/// layered on top by [`CursorFile`](crate::CursorFile) so that each
/// implementation doesn't re-implement seek bookkeeping.
///
/// Implementations must be thread-safe; POSIX requires `read`/`write` to be
/// atomic with respect to each other (paper §II-D).
pub trait FileSystem: Send + Sync {
    /// Short human-readable name of the configuration (e.g. `"ext4+ssd"`).
    fn name(&self) -> &str;

    /// Opens `path`, creating it if `flags` contains
    /// [`CREATE`](OpenFlags::CREATE).
    ///
    /// # Errors
    ///
    /// [`IoError::NotFound`](crate::IoError) if missing without `CREATE`;
    /// [`IoError::AlreadyExists`](crate::IoError) with `CREATE|EXCL`.
    fn open(&self, path: &str, flags: OpenFlags, clock: &ActorClock) -> IoResult<Fd>;

    /// Closes a descriptor.
    ///
    /// # Errors
    ///
    /// [`IoError::BadFd`](crate::IoError) if `fd` is not open.
    fn close(&self, fd: Fd, clock: &ActorClock) -> IoResult<()>;

    /// Reads at `off`; returns bytes read (short at end of file).
    ///
    /// # Errors
    ///
    /// [`IoError::BadFd`](crate::IoError); permission errors for write-only
    /// descriptors.
    fn pread(&self, fd: Fd, buf: &mut [u8], off: u64, clock: &ActorClock) -> IoResult<usize>;

    /// Writes at `off`; returns bytes written.
    ///
    /// # Errors
    ///
    /// [`IoError::BadFd`](crate::IoError); permission errors for read-only
    /// descriptors.
    fn pwrite(&self, fd: Fd, data: &[u8], off: u64, clock: &ActorClock) -> IoResult<usize>;

    /// Forces file data (and metadata) to durable storage.
    fn fsync(&self, fd: Fd, clock: &ActorClock) -> IoResult<()>;

    /// Truncates or extends the file to `len` bytes.
    fn ftruncate(&self, fd: Fd, len: u64, clock: &ActorClock) -> IoResult<()>;

    /// Metadata by descriptor.
    fn fstat(&self, fd: Fd, clock: &ActorClock) -> IoResult<Metadata>;

    /// Metadata by path.
    fn stat(&self, path: &str, clock: &ActorClock) -> IoResult<Metadata>;

    /// Removes a file.
    fn unlink(&self, path: &str, clock: &ActorClock) -> IoResult<()>;

    /// Atomically renames `from` to `to` (replacing `to` if it exists).
    fn rename(&self, from: &str, to: &str, clock: &ActorClock) -> IoResult<()>;

    /// Lists the files whose parent directory is exactly `dir` (full paths).
    fn list_dir(&self, dir: &str, clock: &ActorClock) -> IoResult<Vec<String>>;

    /// Flushes everything to durable storage (`syncfs`).
    fn sync(&self, clock: &ActorClock) -> IoResult<()>;

    /// Simulates a power failure: volatile state (page cache dirty data,
    /// tmpfs content) is lost; durable state survives. Implementations with
    /// no volatile state may do nothing.
    fn simulate_power_failure(&self) {}

    /// Whether a completed `pwrite` is durable without `fsync` (synchronous
    /// durability, paper Table IV).
    fn synchronous_durability(&self) -> bool {
        false
    }

    /// Whether a read can only observe durable writes (durable
    /// linearizability, paper Table I / ref \[28\]).
    fn durable_linearizability(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fd_display() {
        assert_eq!(Fd(7).to_string(), "fd7");
    }

    #[test]
    fn trait_is_object_safe() {
        fn _takes(_fs: &dyn FileSystem) {}
    }
}
