/// Normalizes a path to the canonical form used by the simulated file
/// systems: leading `/`, no trailing `/` (except the root itself), no empty
/// or `.` components.
///
/// The namespace is flat — directories exist implicitly as path prefixes —
/// which matches how the benchmarked applications use the API (they never
/// `mkdir` and always address files by full path).
///
/// # Example
///
/// ```
/// use vfs::normalize_path;
/// assert_eq!(normalize_path("db//wal/./000.log"), "/db/wal/000.log");
/// assert_eq!(normalize_path("/"), "/");
/// ```
pub fn normalize_path(path: &str) -> String {
    let mut out = String::with_capacity(path.len() + 1);
    for comp in path.split('/') {
        if comp.is_empty() || comp == "." {
            continue;
        }
        out.push('/');
        out.push_str(comp);
    }
    if out.is_empty() {
        out.push('/');
    }
    out
}

/// The parent prefix of a normalized path (`/a/b` → `/a`, `/a` → `/`).
pub(crate) fn parent_of(path: &str) -> &str {
    match path.rfind('/') {
        Some(0) | None => "/",
        Some(i) => &path[..i],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_cases() {
        assert_eq!(normalize_path("a/b"), "/a/b");
        assert_eq!(normalize_path("/a/b/"), "/a/b");
        assert_eq!(normalize_path("//a///b"), "/a/b");
        assert_eq!(normalize_path("./x"), "/x");
        assert_eq!(normalize_path(""), "/");
    }

    #[test]
    fn parents() {
        assert_eq!(parent_of("/a/b"), "/a");
        assert_eq!(parent_of("/a"), "/");
        assert_eq!(parent_of("/"), "/");
    }
}
