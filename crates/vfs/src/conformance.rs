use simclock::ActorClock;

use crate::{FileSystem, IoError, OpenFlags};

/// Exercises the POSIX semantics every [`FileSystem`] implementation must
/// share, panicking on any deviation.
///
/// Run by each implementation's test suite and — crucially — by NVCache's
/// tests, since the paper's whole premise is that NVCache is a drop-in layer
/// legacy applications cannot distinguish from the kernel (Table III).
///
/// # Panics
///
/// Panics with a description of the first violated expectation.
pub fn check_posix_semantics(fs: &dyn FileSystem) {
    let c = ActorClock::new();

    // -- open/create semantics ------------------------------------------
    assert!(
        matches!(fs.open("/conf/missing", OpenFlags::RDONLY, &c), Err(IoError::NotFound(_))),
        "open of a missing file without O_CREAT must fail with NotFound"
    );
    let fd = fs
        .open("/conf/a", OpenFlags::RDWR | OpenFlags::CREATE, &c)
        .expect("create must succeed");
    assert!(
        matches!(
            fs.open("/conf/a", OpenFlags::RDWR | OpenFlags::CREATE | OpenFlags::EXCL, &c),
            Err(IoError::AlreadyExists(_))
        ),
        "O_CREAT|O_EXCL on an existing file must fail"
    );

    // -- positional read/write ------------------------------------------
    assert_eq!(fs.pwrite(fd, b"hello world", 0, &c).expect("pwrite"), 11);
    let mut buf = [0u8; 5];
    assert_eq!(fs.pread(fd, &mut buf, 6, &c).expect("pread"), 5);
    assert_eq!(&buf, b"world", "read must observe the write (read-your-writes)");

    // Overwrite in the middle.
    fs.pwrite(fd, b"WORLD", 6, &c).expect("overwrite");
    let mut all = [0u8; 11];
    fs.pread(fd, &mut all, 0, &c).expect("read all");
    assert_eq!(&all, b"hello WORLD");

    // Short read at EOF; read past EOF returns 0.
    let mut big = [0u8; 64];
    assert_eq!(fs.pread(fd, &mut big, 6, &c).unwrap(), 5);
    assert_eq!(fs.pread(fd, &mut big, 100, &c).unwrap(), 0);

    // Sparse extension zero-fills the hole.
    fs.pwrite(fd, b"!", 63, &c).expect("sparse write");
    assert_eq!(fs.fstat(fd, &c).unwrap().size, 64);
    let mut hole = [7u8; 8];
    fs.pread(fd, &mut hole, 20, &c).unwrap();
    assert_eq!(hole, [0u8; 8], "holes must read as zeroes");

    // -- metadata ---------------------------------------------------------
    let st = fs.stat("/conf/a", &c).expect("stat by path");
    let fst = fs.fstat(fd, &c).expect("fstat");
    assert_eq!(st.ino, fst.ino, "stat and fstat must agree on the inode");
    assert_eq!(st.size, 64);
    assert!(fs.stat("/conf", &c).expect("dir stat").is_dir);

    // -- fsync + durability contract --------------------------------------
    fs.fsync(fd, &c).expect("fsync");

    // -- truncate ----------------------------------------------------------
    fs.ftruncate(fd, 5, &c).expect("ftruncate");
    assert_eq!(fs.fstat(fd, &c).unwrap().size, 5);
    let mut t = [0u8; 16];
    assert_eq!(fs.pread(fd, &mut t, 0, &c).unwrap(), 5);
    assert_eq!(&t[..5], b"hello");

    // -- permission enforcement -------------------------------------------
    let ro = fs.open("/conf/a", OpenFlags::RDONLY, &c).unwrap();
    assert!(fs.pwrite(ro, b"x", 0, &c).is_err(), "writing a read-only descriptor must fail");
    let wo = fs.open("/conf/a", OpenFlags::WRONLY, &c).unwrap();
    let mut one = [0u8; 1];
    assert!(fs.pread(wo, &mut one, 0, &c).is_err(), "reading a write-only descriptor must fail");
    fs.close(ro, &c).unwrap();
    fs.close(wo, &c).unwrap();

    // -- rename / unlink / list_dir ----------------------------------------
    fs.rename("/conf/a", "/conf/b", &c).expect("rename");
    assert!(matches!(fs.stat("/conf/a", &c), Err(IoError::NotFound(_))));
    assert_eq!(fs.stat("/conf/b", &c).unwrap().size, 5);
    let listing = fs.list_dir("/conf", &c).expect("list_dir");
    assert_eq!(listing, vec!["/conf/b".to_string()]);

    // -- close semantics -----------------------------------------------------
    fs.close(fd, &c).expect("close");
    assert!(
        matches!(fs.close(fd, &c), Err(IoError::BadFd(_))),
        "double close must fail with BadFd"
    );
    let mut z = [0u8; 1];
    assert!(matches!(fs.pread(fd, &mut z, 0, &c), Err(IoError::BadFd(_))));

    fs.unlink("/conf/b", &c).expect("unlink");
    assert!(matches!(fs.stat("/conf/b", &c), Err(IoError::NotFound(_))));
    assert!(matches!(fs.unlink("/conf/b", &c), Err(IoError::NotFound(_))));

    // -- whole-fs sync must not error ---------------------------------------
    fs.sync(&c).expect("sync");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DaxFs, DaxProfile, Ext4, Ext4Profile, MemFs, NovaFs, NovaProfile};
    use blockdev::{BlockDevice, DmWriteCacheDev, DmWriteCacheProfile, SsdDevice, SsdProfile};
    use nvmm::{NvDimm, NvRegion, NvmmProfile};
    use std::sync::Arc;

    #[test]
    fn memfs_conforms() {
        check_posix_semantics(&MemFs::new());
    }

    #[test]
    fn ext4_ssd_conforms() {
        let ssd = Arc::new(SsdDevice::new(SsdProfile::s4600()));
        check_posix_semantics(&Ext4::new("ext4+ssd", ssd, Ext4Profile::default()));
    }

    #[test]
    fn ext4_dmwritecache_conforms() {
        let ssd: Arc<dyn BlockDevice> = Arc::new(SsdDevice::new(SsdProfile::s4600()));
        let dimm = Arc::new(NvDimm::new(32 << 20, NvmmProfile::optane()));
        let dm = Arc::new(DmWriteCacheDev::new(
            ssd,
            NvRegion::whole(dimm),
            DmWriteCacheProfile::default(),
        ));
        check_posix_semantics(&Ext4::new("ext4+dmwc", dm, Ext4Profile::default()));
    }

    #[test]
    fn dax_conforms() {
        let dimm = Arc::new(NvDimm::new(32 << 20, NvmmProfile::optane()));
        check_posix_semantics(&DaxFs::new(NvRegion::whole(dimm), DaxProfile::default()));
    }

    #[test]
    fn nova_conforms() {
        let dimm = Arc::new(NvDimm::new(32 << 20, NvmmProfile::optane()));
        check_posix_semantics(&NovaFs::new(NvRegion::whole(dimm), NovaProfile::default()));
    }
}
