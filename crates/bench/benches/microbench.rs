//! Criterion micro-benchmarks of the NVCache reproduction's hot paths.
//!
//! These measure the *implementation's* wall-clock speed (how fast the
//! simulator executes), complementing the virtual-time figure binaries that
//! measure the *modelled system*. One group per core mechanism:
//!
//! * `log_append`      — Algorithm 1 (fill + group commit) per write size;
//! * `read_path`       — read-cache hit vs miss vs dirty-miss;
//! * `radix`           — descriptor lookup/creation;
//! * `recovery`        — replay cost per log entry;
//! * `engines`         — rocklet put / sqlight insert over tmpfs;
//! * `page_cache`      — write-combining in the kernel page cache model.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use nvcache::{NvCache, NvCacheConfig, Radix};
use nvmm::{NvDimm, NvRegion, NvmmProfile};
use simclock::ActorClock;
use vfs::{FileSystem, MemFs, OpenFlags, PageCache, PageCacheConfig};

fn mk_cache(cfg: NvCacheConfig) -> (ActorClock, Arc<NvCache>) {
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(
        cfg.required_nvmm_bytes(),
        NvmmProfile::optane().without_durability_tracking(),
    ));
    let inner: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let cache = Arc::new(
        NvCache::builder(NvRegion::whole(dimm))
            .backend(inner)
            .config(cfg)
            .mount(&clock)
            .expect("mount"),
    );
    (clock, cache)
}

fn bench_log_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("log_append");
    for size in [128usize, 4096, 65536] {
        let (clock, cache) = mk_cache(NvCacheConfig {
            nb_entries: 1 << 16,
            batch_min: usize::MAX >> 1,
            batch_max: usize::MAX >> 1,
            ..NvCacheConfig::tiny()
        });
        let fd = cache.open("/bench", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
        let data = vec![7u8; size];
        let mut off = 0u64;
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("pwrite_{size}B"), |b| {
            b.iter(|| {
                // Wrap within the log capacity comfortably.
                off = (off + size as u64) % (1 << 26);
                cache.pwrite(fd, &data, off, &clock).unwrap();
                if cache.pending_entries() > (1 << 15) {
                    cache.flush_log(&clock);
                }
            })
        });
        cache.shutdown(&clock);
    }
    g.finish();
}

fn bench_read_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("read_path");
    // Hit: loaded page.
    {
        let (clock, cache) = mk_cache(NvCacheConfig::tiny());
        let fd = cache.open("/hit", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
        cache.pwrite(fd, &[1u8; 4096], 0, &clock).unwrap();
        let mut buf = [0u8; 4096];
        cache.pread(fd, &mut buf, 0, &clock).unwrap(); // load it
        g.bench_function("hit_4k", |b| b.iter(|| cache.pread(fd, &mut buf, 0, &clock).unwrap()));
        cache.shutdown(&clock);
    }
    // Dirty miss: unloaded page with pending entries (tiny pool forces
    // eviction before each read).
    {
        let (clock, cache) = mk_cache(NvCacheConfig {
            read_cache_pages: 1,
            nb_entries: 1 << 14,
            batch_min: usize::MAX >> 1,
            batch_max: usize::MAX >> 1,
            ..NvCacheConfig::tiny()
        });
        let fd = cache.open("/dm", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
        for p in 0..64u64 {
            cache.pwrite(fd, &[p as u8; 4096], p * 4096, &clock).unwrap();
        }
        let mut buf = [0u8; 4096];
        let mut p = 0u64;
        g.bench_function("dirty_miss_4k", |b| {
            b.iter(|| {
                p = (p + 1) % 64;
                cache.pread(fd, &mut buf, p * 4096, &clock).unwrap()
            })
        });
        cache.shutdown(&clock);
    }
    g.finish();
}

fn bench_radix(c: &mut Criterion) {
    let mut g = c.benchmark_group("radix");
    g.bench_function("get_or_create_cold", |b| {
        b.iter_batched(
            Radix::new,
            |r| {
                for p in 0..256u64 {
                    r.get_or_create(p * 977);
                }
                r
            },
            BatchSize::SmallInput,
        )
    });
    let warm = Radix::new();
    for p in 0..4096u64 {
        warm.get_or_create(p);
    }
    let mut p = 0u64;
    g.bench_function("get_warm", |b| {
        b.iter(|| {
            p = (p + 1) % 4096;
            warm.get(p).expect("present")
        })
    });
    g.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("recovery");
    g.bench_function("replay_1k_entries", |b| {
        b.iter_batched(
            || {
                let clock = ActorClock::new();
                let cfg = NvCacheConfig {
                    nb_entries: 2048,
                    batch_min: usize::MAX >> 1,
                    batch_max: usize::MAX >> 1,
                    ..NvCacheConfig::tiny()
                };
                let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
                let inner: Arc<dyn FileSystem> = Arc::new(MemFs::new());
                let cache = NvCache::builder(NvRegion::whole(Arc::clone(&dimm)))
                    .backend(Arc::clone(&inner))
                    .config(cfg.clone())
                    .mount(&clock)
                    .unwrap();
                let fd = cache.open("/r", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
                for i in 0..1024u64 {
                    cache.pwrite(fd, &[i as u8; 512], i * 512, &clock).unwrap();
                }
                cache.abort();
                (dimm, inner, cfg, clock)
            },
            |(dimm, inner, cfg, clock)| {
                let crashed = Arc::new(dimm.crash_and_restart());
                let cache = NvCache::builder(NvRegion::whole(crashed))
                    .backend(inner)
                    .config(cfg)
                    .mode(nvcache::Mount::Recover)
                    .mount(&clock)
                    .unwrap();
                let report = cache.recovery_report().expect("recover mode");
                assert_eq!(report.entries_replayed, 1024);
                cache.abort();
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("engines");
    {
        let clock = ActorClock::new();
        let fs: Arc<dyn FileSystem> = Arc::new(MemFs::new());
        let db = rocklet::RockletDb::open(fs, "/rock", rocklet::RockletOptions::default(), &clock)
            .unwrap();
        let wo = rocklet::WriteOptions { sync: true };
        let mut i = 0u64;
        g.bench_function("rocklet_put_sync", |b| {
            b.iter(|| {
                i += 1;
                db.put(&rocklet::bench_key(i), &[3u8; 100], &wo, &clock).unwrap()
            })
        });
    }
    {
        let clock = ActorClock::new();
        let fs: Arc<dyn FileSystem> = Arc::new(MemFs::new());
        let db =
            sqlight::SqlightDb::open(fs, "/sql.db", sqlight::SqlightOptions::default(), &clock)
                .unwrap();
        db.create_table("kv", &clock).unwrap();
        let mut i = 0i64;
        g.bench_function("sqlight_insert_txn", |b| {
            b.iter(|| {
                i += 1;
                db.insert("kv", i, &[5u8; 100], &clock).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_page_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("page_cache");
    let pc = PageCache::new(PageCacheConfig::default());
    pc.insert(1, 0, &[0u8; 4096], true);
    let mut i = 0usize;
    g.bench_function("combine_update", |b| {
        b.iter(|| {
            i = (i + 64) % 4096;
            pc.update(1, 0, i, &[9u8; 64])
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_log_append,
    bench_read_path,
    bench_radix,
    bench_recovery,
    bench_engines,
    bench_page_cache
);
criterion_main!(benches);
