//! Constructors for the storage configurations of paper Table IV.

use std::sync::Arc;

use blockdev::{BlockDevice, DmWriteCacheDev, DmWriteCacheProfile, SsdDevice, SsdProfile};
use nvcache::{NvCache, NvCacheConfig};
use nvmm::{NvDimm, NvRegion, NvmmProfile};
use simclock::ActorClock;
use vfs::{
    DaxFs, DaxProfile, Ext4, Ext4Profile, FileSystem, MemFs, NovaFs, NovaProfile, PageCacheConfig,
};

/// The seven systems of the evaluation (paper Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// NVCache in front of an SSD formatted with Ext4 (the headline config).
    NvcacheSsd,
    /// Ext4 over a dm-writecache (NVMM behind the page cache) over an SSD.
    DmWritecacheSsd,
    /// Ext4-DAX directly in NVMM.
    Ext4Dax,
    /// NOVA in NVMM.
    Nova,
    /// Plain Ext4 over the SSD.
    Ssd,
    /// tmpfs (volatile).
    Tmpfs,
    /// NVCache in front of NOVA (theoretical-ceiling variant, §IV-B).
    NvcacheNova,
}

impl SystemKind {
    /// All seven, in the paper's legend order.
    pub fn all() -> [SystemKind; 7] {
        [
            SystemKind::NvcacheSsd,
            SystemKind::DmWritecacheSsd,
            SystemKind::Ext4Dax,
            SystemKind::Nova,
            SystemKind::Ssd,
            SystemKind::Tmpfs,
            SystemKind::NvcacheNova,
        ]
    }

    /// The five systems of Fig. 4.
    pub fn fig4() -> [SystemKind; 5] {
        [
            SystemKind::NvcacheSsd,
            SystemKind::Ssd,
            SystemKind::Ext4Dax,
            SystemKind::Nova,
            SystemKind::DmWritecacheSsd,
        ]
    }

    /// Display name matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::NvcacheSsd => "NVCache+SSD",
            SystemKind::DmWritecacheSsd => "dm-writecache+SSD",
            SystemKind::Ext4Dax => "Ext4-DAX",
            SystemKind::Nova => "NOVA",
            SystemKind::Ssd => "SSD",
            SystemKind::Tmpfs => "tmpfs",
            SystemKind::NvcacheNova => "NVCache+NOVA",
        }
    }
}

/// Sizing knobs for one system instance.
#[derive(Debug, Clone)]
pub struct SystemSpec {
    /// Which configuration to build.
    pub kind: SystemKind,
    /// Scale divisor applied to the paper's capacities.
    pub scale: u64,
    /// NVMM region bytes for DAX/NOVA/dm-cache backends (pre-scaled value;
    /// will be divided by `scale`).
    pub nvmm_bytes_full: u64,
    /// NVCache configuration (already scaled by the caller); `None` uses
    /// `NvCacheConfig::default().scaled(scale)`.
    pub nvcache_cfg: Option<NvCacheConfig>,
    /// Retain file content (disable for timing-only FIO sweeps).
    pub keep_content: bool,
    /// NVCache log stripes (`1` = the paper's single log; applied on top of
    /// whatever configuration the spec resolves to).
    pub log_shards: usize,
    /// I/O queue depth (`1` = the paper's strictly synchronous model).
    /// `N > 1` gives SSD-backed devices `N` parallel command channels and
    /// lets each NVCache cleanup worker keep `N` propagation writes in
    /// flight on its submission ring.
    pub queue_depth: usize,
}

impl SystemSpec {
    /// A spec with paper-default sizes at the given scale.
    pub fn new(kind: SystemKind, scale: u64) -> Self {
        SystemSpec {
            kind,
            scale,
            nvmm_bytes_full: 128 << 30, // one Optane DIMM
            nvcache_cfg: None,
            keep_content: true,
            log_shards: 1,
            queue_depth: 1,
        }
    }

    /// Timing-only variant (no stored content) for large FIO runs.
    pub fn timing_only(mut self) -> Self {
        self.keep_content = false;
        self
    }

    /// Overrides the NVCache configuration.
    pub fn with_nvcache_cfg(mut self, cfg: NvCacheConfig) -> Self {
        self.nvcache_cfg = Some(cfg);
        self
    }

    /// Splits the NVCache log into `shards` stripes (one cleanup worker
    /// each). No effect on systems without an NVCache layer.
    pub fn with_log_shards(mut self, shards: usize) -> Self {
        self.log_shards = shards.max(1);
        self
    }

    /// Sets the I/O queue depth: SSD command channels plus the NVCache
    /// cleanup workers' submission-ring depth (`1` = fully synchronous, the
    /// paper's model). Applies to every system with an SSD and/or an
    /// NVCache layer — including NVCache+NOVA, whose drain overlaps NOVA's
    /// write latency; only the plain NVMM systems (Ext4-DAX, NOVA, tmpfs)
    /// are unaffected.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }
}

/// A built system: the file system under test plus handles for teardown.
pub struct System {
    /// Paper-legend name.
    pub name: &'static str,
    /// The file system the benchmark drives.
    pub fs: Arc<dyn FileSystem>,
    /// The NVCache layer when the system has one (for stats/flush).
    pub nvcache: Option<Arc<NvCache>>,
}

impl System {
    /// Drains and stops background machinery.
    pub fn shutdown(&self, clock: &ActorClock) {
        if let Some(nc) = &self.nvcache {
            nc.shutdown(clock);
        }
    }
}

fn nvmm_profile() -> NvmmProfile {
    // Benchmarks don't crash-test; skip the durable shadow to halve RAM.
    NvmmProfile::optane().without_durability_tracking()
}

fn ssd(keep_content: bool, queue_depth: usize) -> Arc<SsdDevice> {
    let mut profile = SsdProfile::s4600().with_queue_depth(queue_depth.max(1));
    if !keep_content {
        profile = profile.timing_only();
    }
    Arc::new(SsdDevice::new(profile))
}

fn ext4_profile(_scale: u64, keep_content: bool) -> Ext4Profile {
    // The paper's testbed has 384 GiB of DRAM: the page cache never feels
    // memory pressure in any of the evaluated workloads, so its capacity is
    // NOT scaled down with the datasets (content-free pages cost almost
    // nothing when `keep_content` is off).
    Ext4Profile {
        cache: PageCacheConfig { keep_content, ..PageCacheConfig::default() },
        ..Ext4Profile::default()
    }
}

fn ext4_dmwc_profile(scale: u64, keep_content: bool) -> Ext4Profile {
    // jbd2 commits land in the NVMM cache, not on the SSD: the sequential
    // journal write is cheap (the dm flush itself is charged by the device).
    Ext4Profile {
        journal_commit: simclock::SimTime::from_micros(2),
        ..ext4_profile(scale, keep_content)
    }
}

/// Builds a system per `spec`. NVCache variants start their cleanup thread;
/// call [`System::shutdown`] when done.
///
/// # Panics
///
/// Panics if NVCache formatting fails (a sizing bug in the spec).
pub fn build_system(spec: &SystemSpec, clock: &ActorClock) -> System {
    let scale = spec.scale.max(1);
    let nvmm_bytes = (spec.nvmm_bytes_full / scale).max(64 << 20);
    match spec.kind {
        SystemKind::Ssd => {
            let dev = ssd(spec.keep_content, spec.queue_depth);
            System {
                name: spec.kind.label(),
                fs: Arc::new(Ext4::new("ext4+ssd", dev, ext4_profile(scale, spec.keep_content))),
                nvcache: None,
            }
        }
        SystemKind::Tmpfs => {
            System { name: spec.kind.label(), fs: Arc::new(MemFs::new()), nvcache: None }
        }
        SystemKind::Ext4Dax => {
            let dimm = Arc::new(NvDimm::new(nvmm_bytes, nvmm_profile()));
            System {
                name: spec.kind.label(),
                fs: Arc::new(DaxFs::new(NvRegion::whole(dimm), DaxProfile::default())),
                nvcache: None,
            }
        }
        SystemKind::Nova => {
            let dimm = Arc::new(NvDimm::new(nvmm_bytes, nvmm_profile()));
            System {
                name: spec.kind.label(),
                fs: Arc::new(NovaFs::new(NvRegion::whole(dimm), NovaProfile::default())),
                nvcache: None,
            }
        }
        SystemKind::DmWritecacheSsd => {
            let dev = ssd(spec.keep_content, spec.queue_depth);
            let dimm = Arc::new(NvDimm::new(nvmm_bytes, nvmm_profile()));
            let dm = Arc::new(DmWriteCacheDev::new(
                dev as Arc<dyn BlockDevice>,
                NvRegion::whole(dimm),
                DmWriteCacheProfile::default(),
            ));
            System {
                name: spec.kind.label(),
                fs: Arc::new(Ext4::new(
                    "ext4+dmwc",
                    dm,
                    ext4_dmwc_profile(scale, spec.keep_content),
                )),
                nvcache: None,
            }
        }
        SystemKind::NvcacheSsd | SystemKind::NvcacheNova => {
            let inner: Arc<dyn FileSystem> = if spec.kind == SystemKind::NvcacheSsd {
                let dev = ssd(spec.keep_content, spec.queue_depth);
                Arc::new(Ext4::new("ext4+ssd", dev, ext4_profile(scale, spec.keep_content)))
            } else {
                let dimm = Arc::new(NvDimm::new(nvmm_bytes, nvmm_profile()));
                Arc::new(NovaFs::new(NvRegion::whole(dimm), NovaProfile::default()))
            };
            let mut cfg = spec
                .nvcache_cfg
                .clone()
                .unwrap_or_else(|| NvCacheConfig::default().scaled(scale));
            if spec.log_shards > 1 {
                cfg = cfg.with_log_shards(spec.log_shards);
            }
            if spec.queue_depth > 1 {
                cfg = cfg.with_queue_depth(spec.queue_depth);
            }
            let log_dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), nvmm_profile()));
            let cache = NvCache::builder(NvRegion::whole(log_dimm))
                .backend(inner)
                .config(cfg)
                .mount(clock)
                .expect("NVCache mount");
            let cache = Arc::new(cache);
            System {
                name: spec.kind.label(),
                fs: Arc::clone(&cache) as Arc<dyn FileSystem>,
                nvcache: Some(cache),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::OpenFlags;

    #[test]
    fn every_system_builds_and_does_io() {
        let clock = ActorClock::new();
        for kind in SystemKind::all() {
            let sys = build_system(&SystemSpec::new(kind, 512), &clock);
            let fd = sys
                .fs
                .open("/smoke", OpenFlags::RDWR | OpenFlags::CREATE, &clock)
                .unwrap_or_else(|e| panic!("{}: open failed: {e}", sys.name));
            sys.fs.pwrite(fd, b"smoke-test", 0, &clock).expect("pwrite");
            let mut buf = [0u8; 10];
            sys.fs.pread(fd, &mut buf, 0, &clock).expect("pread");
            assert_eq!(&buf, b"smoke-test", "{}", sys.name);
            sys.fs.close(fd, &clock).expect("close");
            sys.shutdown(&clock);
        }
    }

    #[test]
    fn sharded_nvcache_system_builds_and_does_io() {
        let clock = ActorClock::new();
        let spec = SystemSpec::new(SystemKind::NvcacheSsd, 512).with_log_shards(4);
        let sys = build_system(&spec, &clock);
        let nc = sys.nvcache.as_ref().expect("nvcache system");
        assert_eq!(nc.config().log_shards, 4);
        let fd = sys
            .fs
            .open("/sharded-smoke", OpenFlags::RDWR | OpenFlags::CREATE, &clock)
            .expect("open");
        for p in 0..8u64 {
            sys.fs.pwrite(fd, &[p as u8 + 1; 4096], p * 4096, &clock).expect("pwrite");
        }
        let mut buf = [0u8; 4096];
        sys.fs.pread(fd, &mut buf, 3 * 4096, &clock).expect("pread");
        assert_eq!(buf[0], 4);
        assert_eq!(nc.stats().snapshot().per_shard.len(), 4);
        sys.fs.close(fd, &clock).expect("close");
        sys.shutdown(&clock);
    }

    #[test]
    fn queue_depth_threads_into_nvcache_and_ssd() {
        let clock = ActorClock::new();
        let spec = SystemSpec::new(SystemKind::NvcacheSsd, 512)
            .with_log_shards(2)
            .with_queue_depth(8);
        let sys = build_system(&spec, &clock);
        let nc = sys.nvcache.as_ref().expect("nvcache system");
        assert_eq!(nc.config().queue_depth, 8);
        let fd = sys.fs.open("/qd", OpenFlags::RDWR | OpenFlags::CREATE, &clock).expect("open");
        sys.fs.pwrite(fd, &[1u8; 4096], 0, &clock).expect("pwrite");
        sys.fs.close(fd, &clock).expect("close");
        sys.shutdown(&clock);
    }

    #[test]
    fn guarantee_matrix_matches_table_iv() {
        let clock = ActorClock::new();
        let expected = [
            (SystemKind::NvcacheSsd, true, true),
            (SystemKind::DmWritecacheSsd, false, false),
            (SystemKind::Ext4Dax, false, false),
            (SystemKind::Nova, true, true),
            (SystemKind::Ssd, false, false),
            (SystemKind::Tmpfs, false, false),
            (SystemKind::NvcacheNova, true, true),
        ];
        for (kind, sync_dur, dur_lin) in expected {
            let sys = build_system(&SystemSpec::new(kind, 512), &clock);
            assert_eq!(sys.fs.synchronous_durability(), sync_dur, "{}", sys.name);
            assert_eq!(sys.fs.durable_linearizability(), dur_lin, "{}", sys.name);
            sys.shutdown(&clock);
        }
    }
}
