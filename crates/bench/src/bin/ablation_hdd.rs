//! Ablation (DESIGN.md §6): the paper motivates reusing the kernel I/O stack
//! partly by its seek-optimizing schedulers (§I). This ablation swaps the
//! SSD for a spinning disk and re-runs the batching sweep: with 8 ms seeks,
//! the elevator ordering + write combining behind NVCache matter far more
//! than on flash, so the batch-size spread should widen dramatically.
//!
//! Usage: `ablation_hdd [--scale N] [--gib G]`

use std::sync::Arc;

use blockdev::{HddDevice, HddProfile};
use fiosim::{run_job, JobSpec, RwMode};
use nvcache::{NvCache, NvCacheConfig};
use nvcache_bench::{arg_u64, print_table, Row};
use nvmm::{NvDimm, NvRegion, NvmmProfile};
use simclock::{ActorClock, SimTime};
use vfs::{Ext4, Ext4Profile, FileSystem, PageCacheConfig};

fn main() {
    let scale = arg_u64("--scale", 64);
    let gib = arg_u64("--gib", 2);
    let io_total = (gib << 30) / scale;
    println!("Ablation — NVCache over a 7200rpm HDD, batching sweep (scale 1/{scale})");

    let mut rows = Vec::new();
    for batch in [1usize, 100, 5000] {
        let clock = ActorClock::new();
        let hdd = Arc::new(HddDevice::new(HddProfile::seven_k2()));
        let inner: Arc<dyn FileSystem> = Arc::new(Ext4::new(
            "ext4+hdd",
            hdd,
            Ext4Profile {
                cache: PageCacheConfig { keep_content: false, ..PageCacheConfig::default() },
                ..Ext4Profile::default()
            },
        ));
        let cfg = NvCacheConfig::default()
            .scaled(scale)
            .with_log_entries(((1u64 << 30) / 4096 / scale).max(64))
            .with_batching(batch, batch);
        let dimm = Arc::new(NvDimm::new(
            cfg.required_nvmm_bytes(),
            NvmmProfile::optane().without_durability_tracking(),
        ));
        let cache = Arc::new(
            NvCache::builder(NvRegion::whole(dimm))
                .backend(inner)
                .config(cfg)
                .mount(&clock)
                .expect("mount"),
        );
        let fs: Arc<dyn FileSystem> = Arc::clone(&cache) as Arc<dyn FileSystem>;
        let job = JobSpec {
            name: format!("hdd-batch-{batch}"),
            rw: RwMode::RandWrite,
            file_size: io_total,
            io_total,
            fsync_every: 1,
            direct: true,
            sample_interval: SimTime::from_millis(1000 / scale.min(1000)),
            ..JobSpec::default()
        };
        let result = run_job(&fs, &job, &clock).expect("fio job");
        rows.push(Row::new(
            format!("batch {batch}"),
            vec![
                format!("{:.1}", result.mean_throughput_mib_s()),
                format!("{:.1}", result.mean_latency.as_micros_f64()),
            ],
        ));
        cache.shutdown(&clock);
    }
    print_table("HDD ablation", &["mean MiB/s", "lat µs"], &rows);
    println!(
        "\nExpectation: the batch-1 / batch-5000 gap is far wider than Fig. 6's\n\
         SSD gap — every un-batched fsync pays an 8 ms seek + 4 ms flush."
    );
}
