//! Million-file churn: drives a stream of distinct paths through a tiered
//! mount whose migrator catalog is **capacity-bounded**, proving that at
//! 10^6-file scale the sweep stays fast, catalog memory stays flat, and
//! the hot working set keeps its fast-tier placement — including across a
//! crash, where the persisted per-slot heat summaries must carry the hot
//! set's temperature into the recovered mount without a single
//! post-recovery touch.
//!
//! Phases:
//!
//! 1. **Churn** — `--paths` distinct files created, written and closed
//!    through the cache (batched, parked drain, explicit flushes: the run
//!    is virtual-time deterministic). A 64-file working set is re-read
//!    throughout, so its temperature towers over the churn noise. The
//!    resident catalog population is sampled against
//!    `capacity + |hot set|` the whole way.
//! 2. **Sweep** — one `rebalance` over the bounded catalog: wall-clock
//!    time is budgeted (`--sweep-budget-ms`), and the whole hot set must
//!    be promoted onto the fast tier by heat alone (the router sends
//!    everything to the bulk tier).
//! 3. **Crash + recover** — the hot set is reopened and fsynced (stamping
//!    quantized heat into the fd slots), the mount aborts, and a
//!    `RecoverRepair` mount follows: the persisted summaries must stop
//!    the repair pass from demoting the hot set, and the first sweep must
//!    leave it in place — placement quality survives the remount with
//!    zero application reads.
//!
//! Usage: `churn [--smoke] [--paths N] [--capacity N] [--seed N]
//!         [--sweep-budget-ms N] [--json PATH]`
//!
//! `--smoke` shrinks the stream to 10^4 paths and runs the experiment
//! twice, asserting both runs reach the identical final virtual clock and
//! counters (the determinism contract CI leans on).

use std::sync::Arc;
use std::time::Instant;

use nvcache::{
    HeatPolicy, MigrationPolicy, Mount, NvCache, NvCacheConfig, PathPrefixRouter, Router,
};
use nvcache_bench::{arg_flag, arg_str, arg_u64, print_table, Json, Row};
use nvmm::{NvDimm, NvRegion, NvmmProfile};
use simclock::{ActorClock, SimTime};
use vfs::{FileSystem, MemFs, OpenFlags};

/// Files in the hot working set, re-read throughout the churn.
const HOT: usize = 64;
/// Paths created per flush batch (parked drain: zombie-free closes need
/// the flush *before* the batch's closes).
const BATCH: usize = 64;

/// Counters one full run produces — compared verbatim between the two
/// `--smoke` runs.
#[derive(Debug, PartialEq)]
struct RunResult {
    final_clock: SimTime,
    churn_virtual_s: f64,
    evictions: u64,
    readmissions: u64,
    promoted: u64,
    resident_after_churn: usize,
    resident_after_recover: usize,
    repaired: u64,
}

struct WallTimes {
    churn_ms: u128,
    sweep_ms: u128,
    recover_ms: u128,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn hot_path(i: usize) -> String {
    format!("/ws/f{i:02}")
}

fn churn_cfg(capacity: u64) -> NvCacheConfig {
    NvCacheConfig {
        nb_entries: 4096,
        read_cache_pages: 256,
        fd_slots: 256,
        batch_min: usize::MAX >> 1, // parked drain: flushes are explicit,
        batch_max: usize::MAX >> 1, // so virtual time is seed-deterministic
        ..NvCacheConfig::default()
    }
    .with_migration(MigrationPolicy::OnDemand)
    .with_placement(Arc::new(HeatPolicy::new(1, 4.0, 1.0, SimTime::from_secs(3600))))
    .with_catalog_capacity(capacity as usize)
    .with_persist_heat(true)
}

fn run(paths: usize, capacity: u64, seed: u64, sweep_budget_ms: u128) -> (RunResult, WallTimes) {
    let clock = ActorClock::new();
    let cfg = churn_cfg(capacity);
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let bulk: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let fast: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    // No routing rule ever reaches the fast tier: only heat can promote.
    let all_cold: Arc<dyn Router> = Arc::new(PathPrefixRouter::new(vec![], 0));
    let tiers = vec![Arc::clone(&bulk), Arc::clone(&fast)];
    let cache = NvCache::builder(NvRegion::whole(Arc::clone(&dimm)))
        .backends(Arc::clone(&all_cold), tiers.clone())
        .config(cfg.clone())
        .mount(&clock)
        .expect("churn mount");

    // The hot working set, created first, then re-read all run long.
    for i in 0..HOT {
        let fd = cache.open(&hot_path(i), OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
        cache.pwrite(fd, &[0x5A; 64], 0, &clock).unwrap();
        cache.flush_log(&clock);
        cache.close(fd, &clock).unwrap();
    }

    let bound = capacity as usize + HOT;
    let mut rng = seed;
    let mut buf = [0u8; 64];
    let churn_start = Instant::now();
    let mut batch_fds = Vec::with_capacity(BATCH);
    let mut done = 0usize;
    let mut round = 0usize;
    while done < paths {
        let n = BATCH.min(paths - done);
        for i in done..done + n {
            let path = format!("/bulk/f{i}");
            let fd = cache.open(&path, OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
            cache.pwrite(fd, &[i as u8; 64], 0, &clock).unwrap();
            batch_fds.push(fd);
        }
        // Drain, then close: a parked cleanup never reaps zombie slots, so
        // closes must find their entries already propagated.
        cache.flush_log(&clock);
        for fd in batch_fds.drain(..) {
            cache.close(fd, &clock).unwrap();
        }
        // Readmission traffic: re-read one path the clock hand plausibly
        // evicted a few thousand files ago.
        if done > 0 {
            let back = (splitmix(&mut rng) as usize) % done;
            let fd = cache.open(&format!("/bulk/f{back}"), OpenFlags::RDONLY, &clock).unwrap();
            cache.pread(fd, &mut buf, 0, &clock).unwrap();
            cache.close(fd, &clock).unwrap();
        }
        done += n;
        round += 1;
        // Keep the working set glowing: one read pass every 32 batches.
        if round.is_multiple_of(32) {
            for i in 0..HOT {
                let fd = cache.open(&hot_path(i), OpenFlags::RDONLY, &clock).unwrap();
                cache.pread(fd, &mut buf, 0, &clock).unwrap();
                cache.close(fd, &clock).unwrap();
            }
        }
        // The memory bound, sampled under churn.
        if round.is_multiple_of(64) {
            let resident = cache.catalog_resident();
            assert!(
                resident <= bound,
                "{resident} resident > capacity {capacity} + hot {HOT} after {done} paths"
            );
        }
    }
    let churn_ms = churn_start.elapsed().as_millis();
    let churn_virtual = clock.now();
    let resident_after_churn = cache.catalog_resident();
    assert!(resident_after_churn <= bound, "final churn resident {resident_after_churn} > {bound}");

    // Phase 2 — the sweep: sorts only the bounded resident set, promotes
    // the whole hot set, and fits the wall-clock budget.
    let sweep_start = Instant::now();
    let report = cache.rebalance(&clock).expect("churn sweep");
    let sweep_ms = sweep_start.elapsed().as_millis();
    assert_eq!(report.files_promoted as usize, HOT, "the whole hot set must be promoted");
    assert!(
        sweep_ms <= sweep_budget_ms,
        "sweep took {sweep_ms} ms over a {resident_after_churn}-entry catalog \
         (budget {sweep_budget_ms} ms)"
    );
    for i in 0..HOT {
        assert!(fast.stat(&hot_path(i), &clock).is_ok(), "{} not on the fast tier", hot_path(i));
    }

    // Phase 3 — crash with the hot set open and fsynced (the fsync stamps
    // each slot's quantized heat), then recover with repair enabled: the
    // persisted summaries must hold the hot set on the fast tier.
    let mut hot_fds = Vec::with_capacity(HOT);
    for i in 0..HOT {
        let fd = cache.open(&hot_path(i), OpenFlags::RDWR, &clock).unwrap();
        cache.fsync(fd, &clock).unwrap();
        hot_fds.push(fd);
    }
    let snap = cache.stats().snapshot();
    cache.abort();
    drop(cache);

    let recover_start = Instant::now();
    let cache = NvCache::builder(NvRegion::whole(Arc::new(dimm.crash_and_restart())))
        .backends(all_cold, tiers)
        .config(cfg)
        .mode(Mount::RecoverRepair)
        .mount(&clock)
        .expect("recovery mount");
    let recover_ms = recover_start.elapsed().as_millis();
    let report = cache.recovery_report().expect("recover mode");
    assert_eq!(
        report.files_repaired, 0,
        "persisted heat must veto the repair pass demoting the hot set"
    );
    // First post-recovery sweep, zero application touches since the crash:
    // the seeded temperatures alone must keep every hot file in place.
    let sweep = cache.rebalance(&clock).expect("post-recovery sweep");
    assert_eq!(sweep.files_migrated, 0, "the recovered hot set must already be converged");
    for i in 0..HOT {
        assert!(
            fast.stat(&hot_path(i), &clock).is_ok(),
            "{} lost its fast-tier seat across the crash",
            hot_path(i)
        );
        assert!(bulk.stat(&hot_path(i), &clock).is_err(), "{} duplicated on bulk", hot_path(i));
    }
    let resident_after_recover = cache.catalog_resident();
    assert!(resident_after_recover <= bound, "recovered resident {resident_after_recover}");
    cache.shutdown(&clock);

    (
        RunResult {
            final_clock: clock.now(),
            churn_virtual_s: churn_virtual.as_secs_f64(),
            evictions: snap.catalog_evictions,
            readmissions: snap.catalog_readmissions,
            promoted: snap.files_promoted,
            resident_after_churn,
            resident_after_recover,
            repaired: report.files_repaired as u64,
        },
        WallTimes { churn_ms, sweep_ms, recover_ms },
    )
}

fn main() {
    let smoke = arg_flag("--smoke");
    let paths = arg_u64("--paths", if smoke { 10_000 } else { 1_000_000 }) as usize;
    let capacity = arg_u64("--capacity", 4096);
    let seed = arg_u64("--seed", 42);
    let sweep_budget_ms = arg_u64("--sweep-budget-ms", 2_000) as u128;
    let json_path = arg_str("--json");
    println!(
        "Catalog churn — {} mode: {paths} paths through a {capacity}-entry catalog, \
         {HOT} hot files, seed {seed}",
        if smoke { "smoke" } else { "full" }
    );

    let (result, wall) = run(paths, capacity, seed, sweep_budget_ms);
    let rows = vec![
        Row::new(
            "churn",
            vec![
                format!("{paths}"),
                format!("{}", result.resident_after_churn),
                format!("{}", result.evictions),
                format!("{}", result.readmissions),
                format!("{:.3}", result.churn_virtual_s),
                format!("{}", wall.churn_ms),
            ],
        ),
        Row::new(
            "sweep",
            vec![
                "-".into(),
                format!("{}", result.resident_after_churn),
                "-".into(),
                "-".into(),
                "-".into(),
                format!("{}", wall.sweep_ms),
            ],
        ),
        Row::new(
            "recover",
            vec![
                format!("{HOT}"),
                format!("{}", result.resident_after_recover),
                "-".into(),
                "-".into(),
                "-".into(),
                format!("{}", wall.recover_ms),
            ],
        ),
    ];
    print_table(
        &format!("catalog churn (promoted {}, repaired {})", result.promoted, result.repaired),
        &["paths", "resident", "evictions", "readmissions", "virtual s", "wall ms"],
        &rows,
    );

    if smoke {
        let (again, _) = run(paths, capacity, seed, sweep_budget_ms);
        assert_eq!(result, again, "smoke determinism check: two same-seed runs diverged");
        println!("\nsmoke determinism check: OK ({:?})", again.final_clock);
    }

    if let Some(path) = json_path {
        let doc = Json::obj([
            ("benchmark", Json::str("churn")),
            (
                "config",
                Json::obj([
                    ("paths", Json::Int(paths as i64)),
                    ("capacity", Json::Int(capacity as i64)),
                    ("hot_files", Json::Int(HOT as i64)),
                    ("seed", Json::Int(seed as i64)),
                    ("sweep_budget_ms", Json::Int(sweep_budget_ms as i64)),
                    ("smoke", Json::Bool(smoke)),
                ]),
            ),
            (
                "rows",
                Json::Arr(vec![
                    Json::obj([
                        ("phase", Json::str("churn")),
                        ("paths", Json::Int(paths as i64)),
                        ("resident", Json::Int(result.resident_after_churn as i64)),
                        ("catalog_evictions", Json::Int(result.evictions as i64)),
                        ("catalog_readmissions", Json::Int(result.readmissions as i64)),
                        ("elapsed_virtual_s", Json::Num(result.churn_virtual_s)),
                        ("wall_ms", Json::Int(wall.churn_ms as i64)),
                    ]),
                    Json::obj([
                        ("phase", Json::str("sweep")),
                        ("resident", Json::Int(result.resident_after_churn as i64)),
                        ("files_promoted", Json::Int(result.promoted as i64)),
                        ("wall_ms", Json::Int(wall.sweep_ms as i64)),
                    ]),
                    Json::obj([
                        ("phase", Json::str("recover")),
                        ("resident", Json::Int(result.resident_after_recover as i64)),
                        ("files_repaired", Json::Int(result.repaired as i64)),
                        ("hot_retained", Json::Int(HOT as i64)),
                        ("wall_ms", Json::Int(wall.recover_ms as i64)),
                    ]),
                ]),
            ),
        ]);
        std::fs::write(&path, doc.render()).expect("write json snapshot");
        println!("\nwrote {path}");
    }
}
