//! Figure 3: db_bench latencies for the RocksDB and SQLite stand-ins across
//! all seven systems — synchronous write-heavy workloads (left panel) and
//! read-heavy workloads (right panel).
//!
//! Paper reference points (write panel): NVCache+SSD ≥1.9× faster than
//! DM-WriteCache+SSD and plain SSD; NOVA ≈1.6× faster than NVCache+SSD on
//! RocksDB; NVCache ≈1.6× faster than NOVA on SQLite; NVCache+NOVA matches
//! or beats NOVA. Read panel: all systems roughly equal.
//!
//! Usage: `fig3 [--scale N] [--rocks-num N] [--sql-num N] [--shards S] [--queue-depth Q] [--reads]`
//!
//! `--shards S` splits the NVCache write log into `S` striped sub-logs with
//! one cleanup worker each (1 = the paper's single log). `--queue-depth Q`
//! overlaps up to `Q` cleanup propagation writes on a `Q`-channel SSD
//! (1 = the paper's synchronous drain).

use nvcache_bench::{arg_u64, print_table, CommonArgs, Row, SystemKind};
use rocklet::{run_db_bench, BenchOptions, RockBench, RockletDb, RockletOptions};
use simclock::ActorClock;
use sqlight::{run_sql_bench, SqlBench, SqlBenchOptions, SqlightDb, SqlightOptions};

fn main() {
    let common = CommonArgs::parse();
    let scale = common.scale;
    let rocks_num = arg_u64("--rocks-num", 20_000);
    let sql_num = arg_u64("--sql-num", 3_000);
    println!(
        "Fig. 3 — db_bench mean latency [µs/op], sync writes (RocksDB stand-in: {rocks_num} ops, SQLite stand-in: {sql_num} ops, {})",
        common.describe()
    );

    let rock_writes = [RockBench::FillRandom, RockBench::FillSeq, RockBench::Overwrite];
    let rock_reads = [RockBench::ReadRandom, RockBench::ReadSeq];
    let sql_writes = [SqlBench::FillSeqSync, SqlBench::FillRandSync];
    let sql_reads = [SqlBench::ReadRandom, SqlBench::ReadSeq];

    let mut rock_rows: Vec<Row> = Vec::new();
    let mut sql_rows: Vec<Row> = Vec::new();

    for kind in SystemKind::all() {
        // --- RocksDB stand-in -------------------------------------------
        let mut cells = Vec::new();
        for bench in rock_writes.iter().chain(rock_reads.iter()) {
            let clock = ActorClock::new();
            let sys = nvcache_bench::build_system(&common.spec(kind), &clock);
            // Scale the engine's buffer capacities with the experiment so
            // flushes and compactions happen at the paper's relative
            // frequency (RocksDB: 64 MiB memtables at full scale).
            let rock_opts = RockletOptions {
                memtable_bytes: ((64u64 << 20) / scale).max(8 << 10) as usize,
                target_table_bytes: ((128u64 << 20) / scale).max(16 << 10),
                ..RockletOptions::default()
            };
            let db = RockletDb::open(std::sync::Arc::clone(&sys.fs), "/rocksdb", rock_opts, &clock)
                .expect("open rocklet");
            let opts = BenchOptions { num: rocks_num, sync: true, ..BenchOptions::default() };
            if bench.needs_prefill() {
                rocklet::prefill(&db, &opts, &clock).expect("prefill");
            }
            let r = run_db_bench(&db, *bench, &opts, &clock)
                .unwrap_or_else(|e| panic!("{} {}: {e}", kind.label(), bench.name()));
            cells.push(nvcache_bench::report::us(r.mean_latency_us));
            drop(db);
            sys.shutdown(&clock);
        }
        rock_rows.push(Row::new(kind.label(), cells));

        // --- SQLite stand-in ---------------------------------------------
        let mut cells = Vec::new();
        for bench in sql_writes.iter().chain(sql_reads.iter()) {
            let clock = ActorClock::new();
            let sys = nvcache_bench::build_system(&common.spec(kind), &clock);
            let db = SqlightDb::open(
                std::sync::Arc::clone(&sys.fs),
                "/sqlite.db",
                SqlightOptions::default(),
                &clock,
            )
            .expect("open sqlight");
            db.create_table("kv", &clock).expect("create table");
            let opts = SqlBenchOptions { num: sql_num, ..SqlBenchOptions::default() };
            if bench.needs_prefill() {
                sqlight::prefill(&db, "kv", &opts, &clock).expect("prefill");
            }
            let r = run_sql_bench(&db, "kv", *bench, &opts, &clock).expect("bench");
            cells.push(nvcache_bench::report::us(r.mean_latency_us));
            db.close(&clock).expect("close");
            sys.shutdown(&clock);
        }
        sql_rows.push(Row::new(kind.label(), cells));
    }

    print_table(
        "RocksDB stand-in (µs/op)",
        &["fillrandom", "fillseq", "overwrite", "readrandom", "readseq"],
        &rock_rows,
    );
    print_table(
        "SQLite stand-in (µs/op)",
        &["fillseq-sync", "fillrand-sync", "readrandom", "readseq"],
        &sql_rows,
    );
}
