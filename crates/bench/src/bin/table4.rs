//! Table IV: the evaluated file-system configurations — which write cache,
//! which backing store, which file system, and the guarantees each provides.

use nvcache_bench::{print_table, Row, SystemKind, SystemSpec};
use simclock::ActorClock;

fn main() {
    println!("Table IV — evaluated configurations");
    let clock = ActorClock::new();
    let mut rows = Vec::new();
    for kind in SystemKind::all() {
        let sys = nvcache_bench::build_system(&SystemSpec::new(kind, 512), &clock);
        let (write_cache, storage, fs) = match kind {
            SystemKind::NvcacheSsd => ("NVCache (NVMM)", "SSD", "Ext4"),
            SystemKind::DmWritecacheSsd => ("kernel page cache + dm-wc", "SSD", "Ext4"),
            SystemKind::Ext4Dax => ("kernel page cache", "NVMM", "Ext4"),
            SystemKind::Nova => ("none", "NVMM", "NOVA"),
            SystemKind::Ssd => ("kernel page cache", "SSD", "Ext4"),
            SystemKind::Tmpfs => ("kernel page cache", "DDR4", "none"),
            SystemKind::NvcacheNova => ("NVCache (NVMM)", "NVMM", "NOVA"),
        };
        rows.push(Row::new(
            sys.name,
            vec![
                write_cache.to_string(),
                storage.to_string(),
                fs.to_string(),
                if sys.fs.synchronous_durability() { "by default" } else { "O_DIRECT|O_SYNC" }
                    .to_string(),
                if sys.fs.durable_linearizability() { "by default" } else { "no" }.to_string(),
            ],
        ));
        sys.shutdown(&clock);
    }
    print_table(
        "Table IV",
        &["write cache", "storage", "FS", "sync durability", "durable linearizability"],
        &rows,
    );
}
