//! Tier-rebalancing sweep: shows hot/cold convergence after a routing-policy
//! change leaves files misplaced, and — with `--heat-policy` — that a
//! temperature-driven [`HeatPolicy`] converges a hot working set onto the
//! fast tier even when **no routing rule ever would**.
//!
//! Phase 1 mounts a two-tier stack (Ext4+HDD bulk tier 0, NOVA hot tier 1)
//! under a *cold-everything* policy, writes a hot set under `/hot/**` and a
//! cold set under `/cold/**`, and crashes. Phase 2 recovers under the real
//! policy (`/hot/** → NOVA`): recovery replays every file to the tier that
//! acknowledged it — tier 0 — and reports the whole hot set as misplaced.
//! With `--rebalance`, `NvCache::rebalance` sweeps run until the catalog is
//! converged, and the scan time of the hot set is compared before (bulk
//! tier) and after (NOVA tier).
//!
//! `--heat-policy` runs a different experiment: the hot set lives under a
//! **cold-routed** prefix (`/data/hot/**`, router sends everything to the
//! bulk tier), so `RouterPlacement` — the static default — never moves it.
//! The same workload under a `HeatPolicy` promotes the hot files onto NOVA
//! purely from their access temperature; the demo compares the hot-set
//! scan latency under both policies against an all-fast baseline (the
//! acceptance bar: heat-policy scan within 2× of all-fast).
//!
//! Usage: `rebalance [--files N] [--kib K] [--rebalance] [--heat-policy]`

use std::sync::Arc;

use blockdev::{HddDevice, HddProfile};
use nvcache::{
    HeatPolicy, MigrationPolicy, Mount, NvCache, NvCacheConfig, PathPrefixRouter, PlacementPolicy,
    Router, RouterPlacement,
};
use nvcache_bench::{arg_flag, arg_u64};
use nvmm::{NvDimm, NvRegion, NvmmProfile};
use simclock::{ActorClock, SimTime};
use vfs::{Ext4, Ext4Profile, FileSystem, NovaFs, NovaProfile, OpenFlags};

/// Virtual time to read every file under `dir` once, sequentially, off `fs`.
fn scan_dir(fs: &Arc<dyn FileSystem>, dir: &str, files: u64, kib: u64) -> simclock::SimTime {
    let clock = ActorClock::new();
    let mut buf = vec![0u8; (kib << 10) as usize];
    for i in 0..files {
        let path = format!("{dir}/f{i:03}");
        let fd = fs.open(&path, OpenFlags::RDONLY, &clock).expect("scan file");
        fs.pread(fd, &mut buf, 0, &clock).expect("read");
        fs.close(fd, &clock).expect("close");
    }
    clock.now()
}

/// Virtual time to read every `/hot` file once, sequentially, off `fs`.
fn scan_hot(fs: &Arc<dyn FileSystem>, files: u64, kib: u64) -> simclock::SimTime {
    scan_dir(fs, "/hot", files, kib)
}

fn placement(hot: &Arc<dyn FileSystem>, bulk: &Arc<dyn FileSystem>, clock: &ActorClock) {
    let count = |fs: &Arc<dyn FileSystem>| fs.list_dir("/hot", clock).map_or(0, |l| l.len());
    println!(
        "  placement of /hot/**: {} file(s) on NOVA, {} file(s) on ext4+hdd",
        count(hot),
        count(bulk)
    );
}

/// Scans the hot set wherever each file currently lives (fast tier first).
fn scan_converged(
    fast: &Arc<dyn FileSystem>,
    bulk: &Arc<dyn FileSystem>,
    files: u64,
    kib: u64,
) -> SimTime {
    let clock = ActorClock::new();
    let mut buf = vec![0u8; (kib << 10) as usize];
    for i in 0..files {
        let path = format!("/data/hot/f{i:03}");
        let fs = if fast.stat(&path, &clock).is_ok() { fast } else { bulk };
        let fd = fs.open(&path, OpenFlags::RDONLY, &clock).expect("hot file");
        fs.pread(fd, &mut buf, 0, &clock).expect("read");
        fs.close(fd, &clock).expect("close");
    }
    clock.now()
}

/// The `--heat-policy` experiment: the hot set lives under a cold-routed
/// prefix, so only temperature — never the router — can move it. Returns
/// `(hot-set scan time after convergence, files promoted)`.
fn heat_policy_run(
    policy: Arc<dyn PlacementPolicy>,
    label: &str,
    files: u64,
    kib: u64,
) -> (SimTime, u64) {
    let clock = ActorClock::new();
    let hdd = Arc::new(HddDevice::new(HddProfile::seven_k2()));
    let bulk: Arc<dyn FileSystem> = Arc::new(Ext4::new("ext4+hdd", hdd, Ext4Profile::default()));
    let nova_dimm = Arc::new(NvDimm::new(1 << 30, NvmmProfile::optane()));
    let fast: Arc<dyn FileSystem> =
        Arc::new(NovaFs::new(NvRegion::whole(nova_dimm), NovaProfile::default()));
    let cfg = NvCacheConfig {
        nb_entries: (2 * files * kib.div_ceil(4)).max(64).next_multiple_of(2),
        fd_slots: (2 * files + 8) as u32,
        ..NvCacheConfig::default()
    }
    .with_migration(MigrationPolicy::OnDemand)
    .with_placement(policy);
    let log_dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::optane()));
    // Every path — including /data/hot/** — routes to the bulk tier: no
    // static rule ever reaches NOVA.
    let all_cold: Arc<dyn Router> = Arc::new(PathPrefixRouter::new(vec![], 0));
    let cache = NvCache::builder(NvRegion::whole(log_dimm))
        .backends(all_cold, vec![Arc::clone(&bulk), Arc::clone(&fast)])
        .config(cfg)
        .mount(&clock)
        .expect("heat-policy mount");

    // Write the working set, drain, close: everything lands on ext4+hdd.
    let payload = vec![0x5Au8; (kib << 10) as usize];
    let mut fds = Vec::new();
    for i in 0..files {
        for prefix in ["/data/hot", "/data/cold"] {
            let fd = cache
                .open(&format!("{prefix}/f{i:03}"), OpenFlags::RDWR | OpenFlags::CREATE, &clock)
                .expect("create");
            cache.pwrite(fd, &payload, 0, &clock).expect("write");
            fds.push(fd);
        }
    }
    cache.flush_log(&clock);
    for fd in fds {
        cache.close(fd, &clock).expect("close");
    }
    // Heat the hot set up: ten read passes per file, through the cache.
    let mut buf = vec![0u8; (kib << 10) as usize];
    for i in 0..files {
        let path = format!("/data/hot/f{i:03}");
        let fd = cache.open(&path, OpenFlags::RDONLY, &clock).expect("reopen");
        for _ in 0..10 {
            cache.pread(fd, &mut buf, 0, &clock).expect("read");
        }
        cache.close(fd, &clock).expect("close");
    }
    // Sweep until converged.
    let mut rounds = 0;
    loop {
        rounds += 1;
        let sweep = cache.rebalance(&clock).expect("rebalance sweep");
        println!(
            "  [{label}] sweep {rounds}: {} promoted, {} demoted, {} busy, {} in place",
            sweep.files_promoted, sweep.files_demoted, sweep.files_busy, sweep.files_in_place
        );
        if sweep.files_migrated == 0 && sweep.files_busy == 0 {
            break;
        }
    }
    let snap = cache.stats().snapshot();
    println!(
        "  [{label}] stats: files_promoted = {}, files_demoted = {}, fast_tier_bytes = {}",
        snap.files_promoted, snap.files_demoted, snap.fast_tier_bytes
    );
    cache.shutdown(&clock);
    // Cold device caches: the scan must measure the medium, not DRAM.
    bulk.simulate_power_failure();
    (scan_converged(&fast, &bulk, files, kib), snap.files_promoted)
}

/// `--heat-policy`: heat policy vs. path router convergence on a hot set
/// the router never places on the fast tier, against an all-fast baseline.
fn heat_policy_demo(files: u64, kib: u64) {
    println!(
        "Heat-driven placement — {files} hot + {files} cold files of {kib} KiB \
         under a cold-routed prefix (router: everything -> ext4+hdd)"
    );
    // All-fast baseline: the same hot set written natively to NOVA.
    let clock = ActorClock::new();
    let nova_dimm = Arc::new(NvDimm::new(1 << 30, NvmmProfile::optane()));
    let all_fast: Arc<dyn FileSystem> =
        Arc::new(NovaFs::new(NvRegion::whole(nova_dimm), NovaProfile::default()));
    let payload = vec![0x5Au8; (kib << 10) as usize];
    for i in 0..files {
        let path = format!("/data/hot/f{i:03}");
        let fd = all_fast.open(&path, OpenFlags::RDWR | OpenFlags::CREATE, &clock).expect("open");
        all_fast.pwrite(fd, &payload, 0, &clock).expect("write");
        all_fast.close(fd, &clock).expect("close");
    }
    let baseline = scan_dir(&all_fast, "/data/hot", files, kib);
    println!("  all-fast baseline (hot set native on NOVA): {baseline}");

    // Promote above 5 units of decayed heat, demote below 1, heat halves
    // every virtual hour (no meaningful decay inside this short demo).
    let heat: Arc<dyn PlacementPolicy> =
        Arc::new(HeatPolicy::new(1, 5.0, 1.0, SimTime::from_secs(3600)));
    let (t_router, promoted_router) =
        heat_policy_run(Arc::new(RouterPlacement), "router", files, kib);
    let (t_heat, promoted_heat) = heat_policy_run(heat, "heat", files, kib);

    println!("  hot-set scan, router placement (stranded on ext4+hdd): {t_router}");
    println!("  hot-set scan, heat policy (converged onto NOVA):       {t_heat}");
    let vs_base = t_heat.as_nanos() as f64 / baseline.as_nanos().max(1) as f64;
    let speedup = t_router.as_nanos() as f64 / t_heat.as_nanos().max(1) as f64;
    println!("  heat policy vs all-fast baseline: {vs_base:.2}x; vs router placement: {speedup:.0}x faster");

    assert_eq!(promoted_router, 0, "the static router must never promote by heat");
    assert_eq!(promoted_heat, files, "the heat policy must promote the whole hot set");
    assert!(
        t_heat.as_nanos() <= 2 * baseline.as_nanos(),
        "converged hot-set scan must be within 2x of the all-fast baseline \
         ({t_heat} vs {baseline})"
    );
    assert!(t_router > t_heat, "the stranded hot set must scan slower than the converged one");
}

fn main() {
    let files = arg_u64("--files", 16);
    let kib = arg_u64("--kib", 256);
    if arg_flag("--heat-policy") {
        heat_policy_demo(files, kib);
        return;
    }
    let do_rebalance = arg_flag("--rebalance");
    println!(
        "Tier rebalancer — {files} hot + {files} cold files of {kib} KiB, \
         policy change while crashed{}",
        if do_rebalance { ", then --rebalance sweep" } else { "" }
    );

    let clock = ActorClock::new();
    let hdd = Arc::new(HddDevice::new(HddProfile::seven_k2()));
    let bulk: Arc<dyn FileSystem> = Arc::new(Ext4::new("ext4+hdd", hdd, Ext4Profile::default()));
    let nova_dimm = Arc::new(NvDimm::new(1 << 30, NvmmProfile::optane()));
    let hot: Arc<dyn FileSystem> =
        Arc::new(NovaFs::new(NvRegion::whole(nova_dimm), NovaProfile::default()));

    let cfg = NvCacheConfig {
        nb_entries: (2 * files * kib.div_ceil(4)).max(64).next_multiple_of(2),
        fd_slots: (2 * files + 8) as u32,
        batch_min: usize::MAX >> 1, // park the drain: the crash finds everything in the log
        batch_max: usize::MAX >> 1,
        ..NvCacheConfig::default()
    }
    .with_migration(MigrationPolicy::OnDemand);
    let log_dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::optane()));

    // Phase 1 — the old policy: everything lands on the bulk tier.
    let cold_everything: Arc<dyn Router> = Arc::new(PathPrefixRouter::new(vec![], 0));
    let cache = NvCache::builder(NvRegion::whole(Arc::clone(&log_dimm)))
        .backends(cold_everything, vec![Arc::clone(&bulk), Arc::clone(&hot)])
        .config(cfg.clone())
        .mount(&clock)
        .expect("phase-1 mount");
    let payload = vec![0xA5u8; (kib << 10) as usize];
    for i in 0..files {
        for prefix in ["/hot", "/cold"] {
            let fd = cache
                .open(&format!("{prefix}/f{i:03}"), OpenFlags::RDWR | OpenFlags::CREATE, &clock)
                .expect("create");
            cache.pwrite(fd, &payload, 0, &clock).expect("write");
        }
    }
    println!(
        "phase 1: {} entries pending under the cold-everything policy — power failure",
        cache.pending_entries()
    );
    cache.abort();
    drop(cache);
    let restarted = Arc::new(log_dimm.crash_and_restart());

    // Phase 2 — recover under the real policy: /hot/** belongs on NOVA.
    let hot_policy: Arc<dyn Router> = Arc::new(PathPrefixRouter::new(vec![("/hot".into(), 1)], 0));
    let cache = NvCache::builder(NvRegion::whole(restarted))
        .backends(Arc::clone(&hot_policy), vec![Arc::clone(&bulk), Arc::clone(&hot)])
        .config(cfg)
        .mode(Mount::Recover)
        .mount(&clock)
        .expect("phase-2 recovery");
    let report = cache.recovery_report().expect("recover mode");
    println!(
        "phase 2: recovery replayed {} entries; files_misplaced = {}",
        report.entries_replayed, report.files_misplaced
    );
    placement(&hot, &bulk, &clock);
    // Drop the bulk tier's volatile page cache (warm from the recovery
    // replay) so both scans measure the device, not DRAM.
    bulk.simulate_power_failure();
    let before = scan_hot(&bulk, files, kib);
    println!("  hot-set scan on its current (bulk) tier, cold caches: {before}");

    if !do_rebalance {
        println!("pass --rebalance to re-home the misplaced files and re-measure");
        cache.shutdown(&clock);
        return;
    }

    // The sweep: loop until converged (one round unless files are busy).
    let mut rounds = 0;
    loop {
        rounds += 1;
        let sweep = cache.rebalance(&clock).expect("rebalance sweep");
        println!(
            "sweep {rounds}: {} migrated ({} bytes), {} busy, {} in place",
            sweep.files_migrated, sweep.bytes_moved, sweep.files_busy, sweep.files_in_place
        );
        if sweep.files_migrated == 0 && sweep.files_busy == 0 {
            break;
        }
    }
    let snap = cache.stats().snapshot();
    println!(
        "stats: files_migrated = {}, migration_bytes = {}",
        snap.files_migrated, snap.migration_bytes
    );
    placement(&hot, &bulk, &clock);
    hot.simulate_power_failure(); // NOVA is NVMM-native: nothing volatile to lose
    let after = scan_hot(&hot, files, kib);
    println!("  hot-set scan on its rebalanced (NOVA) tier: {after}");
    let speedup = before.as_nanos() as f64 / after.as_nanos().max(1) as f64;
    println!("  convergence: hot reads {speedup:.1}x faster after the sweep");
    assert!(
        cache.stats().snapshot().files_migrated >= files,
        "the sweep must have re-homed the whole hot set"
    );
    cache.shutdown(&clock);
}
