//! Tier-rebalancing sweep: shows hot/cold convergence after a routing-policy
//! change leaves files misplaced.
//!
//! Phase 1 mounts a two-tier stack (Ext4+HDD bulk tier 0, NOVA hot tier 1)
//! under a *cold-everything* policy, writes a hot set under `/hot/**` and a
//! cold set under `/cold/**`, and crashes. Phase 2 recovers under the real
//! policy (`/hot/** → NOVA`): recovery replays every file to the tier that
//! acknowledged it — tier 0 — and reports the whole hot set as misplaced.
//! With `--rebalance`, `NvCache::rebalance` sweeps run until the catalog is
//! converged, and the scan time of the hot set is compared before (bulk
//! tier) and after (NOVA tier).
//!
//! Usage: `rebalance [--files N] [--kib K] [--rebalance]`

use std::sync::Arc;

use blockdev::{HddDevice, HddProfile};
use nvcache::{MigrationPolicy, Mount, NvCache, NvCacheConfig, PathPrefixRouter, Router};
use nvcache_bench::{arg_flag, arg_u64};
use nvmm::{NvDimm, NvRegion, NvmmProfile};
use simclock::ActorClock;
use vfs::{Ext4, Ext4Profile, FileSystem, NovaFs, NovaProfile, OpenFlags};

/// Virtual time to read every `/hot` file once, sequentially, off `fs`.
fn scan_hot(fs: &Arc<dyn FileSystem>, files: u64, kib: u64) -> simclock::SimTime {
    let clock = ActorClock::new();
    let mut buf = vec![0u8; (kib << 10) as usize];
    for i in 0..files {
        let path = format!("/hot/f{i:03}");
        let fd = fs.open(&path, OpenFlags::RDONLY, &clock).expect("hot file");
        fs.pread(fd, &mut buf, 0, &clock).expect("read");
        fs.close(fd, &clock).expect("close");
    }
    clock.now()
}

fn placement(hot: &Arc<dyn FileSystem>, bulk: &Arc<dyn FileSystem>, clock: &ActorClock) {
    let count = |fs: &Arc<dyn FileSystem>| fs.list_dir("/hot", clock).map_or(0, |l| l.len());
    println!(
        "  placement of /hot/**: {} file(s) on NOVA, {} file(s) on ext4+hdd",
        count(hot),
        count(bulk)
    );
}

fn main() {
    let files = arg_u64("--files", 16);
    let kib = arg_u64("--kib", 256);
    let do_rebalance = arg_flag("--rebalance");
    println!(
        "Tier rebalancer — {files} hot + {files} cold files of {kib} KiB, \
         policy change while crashed{}",
        if do_rebalance { ", then --rebalance sweep" } else { "" }
    );

    let clock = ActorClock::new();
    let hdd = Arc::new(HddDevice::new(HddProfile::seven_k2()));
    let bulk: Arc<dyn FileSystem> = Arc::new(Ext4::new("ext4+hdd", hdd, Ext4Profile::default()));
    let nova_dimm = Arc::new(NvDimm::new(1 << 30, NvmmProfile::optane()));
    let hot: Arc<dyn FileSystem> =
        Arc::new(NovaFs::new(NvRegion::whole(nova_dimm), NovaProfile::default()));

    let cfg = NvCacheConfig {
        nb_entries: (2 * files * kib.div_ceil(4)).max(64).next_multiple_of(2),
        fd_slots: (2 * files + 8) as u32,
        batch_min: usize::MAX >> 1, // park the drain: the crash finds everything in the log
        batch_max: usize::MAX >> 1,
        ..NvCacheConfig::default()
    }
    .with_migration(MigrationPolicy::OnDemand);
    let log_dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::optane()));

    // Phase 1 — the old policy: everything lands on the bulk tier.
    let cold_everything: Arc<dyn Router> = Arc::new(PathPrefixRouter::new(vec![], 0));
    let cache = NvCache::builder(NvRegion::whole(Arc::clone(&log_dimm)))
        .backends(cold_everything, vec![Arc::clone(&bulk), Arc::clone(&hot)])
        .config(cfg.clone())
        .mount(&clock)
        .expect("phase-1 mount");
    let payload = vec![0xA5u8; (kib << 10) as usize];
    for i in 0..files {
        for prefix in ["/hot", "/cold"] {
            let fd = cache
                .open(&format!("{prefix}/f{i:03}"), OpenFlags::RDWR | OpenFlags::CREATE, &clock)
                .expect("create");
            cache.pwrite(fd, &payload, 0, &clock).expect("write");
        }
    }
    println!(
        "phase 1: {} entries pending under the cold-everything policy — power failure",
        cache.pending_entries()
    );
    cache.abort();
    drop(cache);
    let restarted = Arc::new(log_dimm.crash_and_restart());

    // Phase 2 — recover under the real policy: /hot/** belongs on NOVA.
    let hot_policy: Arc<dyn Router> = Arc::new(PathPrefixRouter::new(vec![("/hot".into(), 1)], 0));
    let cache = NvCache::builder(NvRegion::whole(restarted))
        .backends(Arc::clone(&hot_policy), vec![Arc::clone(&bulk), Arc::clone(&hot)])
        .config(cfg)
        .mode(Mount::Recover)
        .mount(&clock)
        .expect("phase-2 recovery");
    let report = cache.recovery_report().expect("recover mode");
    println!(
        "phase 2: recovery replayed {} entries; files_misplaced = {}",
        report.entries_replayed, report.files_misplaced
    );
    placement(&hot, &bulk, &clock);
    // Drop the bulk tier's volatile page cache (warm from the recovery
    // replay) so both scans measure the device, not DRAM.
    bulk.simulate_power_failure();
    let before = scan_hot(&bulk, files, kib);
    println!("  hot-set scan on its current (bulk) tier, cold caches: {before}");

    if !do_rebalance {
        println!("pass --rebalance to re-home the misplaced files and re-measure");
        cache.shutdown(&clock);
        return;
    }

    // The sweep: loop until converged (one round unless files are busy).
    let mut rounds = 0;
    loop {
        rounds += 1;
        let sweep = cache.rebalance(&clock).expect("rebalance sweep");
        println!(
            "sweep {rounds}: {} migrated ({} bytes), {} busy, {} in place",
            sweep.files_migrated, sweep.bytes_moved, sweep.files_busy, sweep.files_in_place
        );
        if sweep.files_migrated == 0 && sweep.files_busy == 0 {
            break;
        }
    }
    let snap = cache.stats().snapshot();
    println!(
        "stats: files_migrated = {}, migration_bytes = {}",
        snap.files_migrated, snap.migration_bytes
    );
    placement(&hot, &bulk, &clock);
    hot.simulate_power_failure(); // NOVA is NVMM-native: nothing volatile to lose
    let after = scan_hot(&hot, files, kib);
    println!("  hot-set scan on its rebalanced (NOVA) tier: {after}");
    let speedup = before.as_nanos() as f64 / after.as_nanos().max(1) as f64;
    println!("  convergence: hot reads {speedup:.1}x faster after the sweep");
    assert!(
        cache.stats().snapshot().files_migrated >= files,
        "the sweep must have re-homed the whole hot set"
    );
    cache.shutdown(&clock);
}
