//! Figure 6: influence of the cleanup-thread batch size (1 / 10 / 100 / 500
//! / 1000 / 5000 entries) under a 20 GiB random-write load with an 8 GiB
//! log — extended with two more axes, the submission-ring queue depth and
//! the log-stripe count.
//!
//! Paper reference points (queue depth 1, one stripe): before saturation
//! the batch size is irrelevant; after it, batch=1 collapses to ≈21 MiB/s
//! (one fsync per entry) while batches ≥100 all land near the SSD's
//! ≈80 MiB/s random-write speed. Deeper rings overlap the batch's
//! propagation `pwrite`s on a multi-channel SSD, which raises the
//! post-saturation floor until the per-batch flush barrier — not fsync
//! amortization — becomes the ceiling: once the pwrites overlap, growing
//! the batch past the ring depth stops paying.
//!
//! Usage: `fig6 [--scale N] [--gib G] [--queue-depth Q] [--shards S]
//! [--series]`
//!
//! Without `--queue-depth`, the sweep covers Q ∈ {1, 8, 32} × every batch
//! size and prints a post-saturation matrix over both axes; passing
//! `--queue-depth Q` pins the single depth Q (Q = 1 reproduces the paper's
//! synchronous-drain numbers). Likewise `--shards S` pins the stripe
//! count; without it the sweep runs S ∈ {1, 4} and closes with an
//! *analysis pass* that attributes the post-saturation ceiling: if
//! striping the log (more cleanup workers) lifts the floor, the cleanup
//! pool was the bottleneck; if it does not, the drain device or the
//! single-threaded submission front-end is.

use std::collections::BTreeMap;

use fiosim::{run_job, JobSpec, RwMode};
use nvcache::NvCacheConfig;
use nvcache_bench::{arg_flag, arg_u64, print_series, print_table, Row, SystemKind, SystemSpec};
use simclock::{ActorClock, SimTime};

/// Result of one (batch, queue-depth, shards) cell.
struct Cell {
    mean_mib_s: f64,
    post_sat_mib_s: f64,
    paper_secs: f64,
    fsyncs: u64,
    uring_peak: u64,
}

fn run_cell(
    scale: u64,
    io_total: u64,
    batch: usize,
    queue_depth: usize,
    shards: usize,
    want_series: bool,
) -> Cell {
    let clock = ActorClock::new();
    // Batch sizes are a *policy*, not a capacity: don't scale them.
    let mut cfg = NvCacheConfig::default()
        .scaled(scale)
        .with_log_entries(((8u64 << 30) / 4096 / scale).max(64))
        .with_batching(batch.max(1), batch.max(1));
    if shards > 1 {
        cfg = cfg.with_log_shards(shards);
    }
    let spec = SystemSpec::new(SystemKind::NvcacheSsd, scale)
        .with_nvcache_cfg(cfg)
        .with_queue_depth(queue_depth)
        .timing_only();
    let sys = nvcache_bench::build_system(&spec, &clock);
    let job = JobSpec {
        name: format!("batch-{batch}-qd-{queue_depth}-sh-{shards}"),
        rw: RwMode::RandWrite,
        file_size: io_total,
        io_total,
        fsync_every: 1,
        direct: true,
        sample_interval: SimTime::from_millis(1000 / scale.min(1000)),
        ..JobSpec::default()
    };
    let result = run_job(&sys.fs, &job, &clock).expect("fio job");
    let nc = sys.nvcache.as_ref().expect("nvcache system");
    let stats = nc.stats().snapshot();
    // Post-saturation throughput from the cumulative curve: rate over
    // everything after the first interval that dropped below 60% of the
    // initial plateau (robust to the burst/stall cycles of big batches).
    let plateau = result.throughput.first().map_or(0.0, |&(_, v)| v);
    let sat_t = result.throughput.iter().find(|&&(_, v)| v < plateau * 0.6).map(|&(t, _)| t);
    let post_sat_mib_s = match sat_t {
        Some(t0) => {
            let at = |t: SimTime| {
                result
                    .cumulative_gib
                    .iter()
                    .rev()
                    .find(|&&(ts, _)| ts <= t)
                    .map_or(0.0, |&(_, v)| v * 1024.0)
            };
            let end = result.elapsed;
            let mib = (at(end) - at(t0)).max(0.0);
            mib / (end - t0).as_secs_f64().max(1e-9)
        }
        None => result.mean_throughput_mib_s(),
    };
    if want_series {
        print_series(
            &format!("batch-{batch} qd-{queue_depth} sh-{shards} throughput"),
            "MiB/s",
            scale,
            &result.throughput,
        );
    }
    let uring_peak = stats.per_shard.iter().map(|s| s.uring_inflight_peak).max().unwrap_or(0);
    let cell = Cell {
        mean_mib_s: result.mean_throughput_mib_s(),
        post_sat_mib_s,
        paper_secs: result.elapsed.as_secs_f64() * scale as f64,
        fsyncs: stats.cleanup_fsyncs,
        uring_peak,
    };
    sys.shutdown(&clock);
    cell
}

fn main() {
    let scale = arg_u64("--scale", 64);
    let gib = arg_u64("--gib", 20);
    let io_total = (gib << 30) / scale;
    let want_series = arg_flag("--series");
    // Pin a single depth with --queue-depth; sweep the default set
    // otherwise (1 = paper, 8/32 = overlapped drains).
    let depths: Vec<usize> = match arg_u64("--queue-depth", 0) {
        0 => vec![1, 8, 32],
        q => vec![q.max(1) as usize],
    };
    // Pin a stripe count with --shards; sweep {1, 4} otherwise so the
    // closing analysis can compare cleanup-pool sizes.
    let shard_counts: Vec<usize> = match arg_u64("--shards", 0) {
        0 => vec![1, 4],
        s => vec![s.max(1) as usize],
    };
    println!(
        "Fig. 6 — NVCache+SSD batching × queue-depth × shards sweep, 8 GiB log \
         (scale 1/{scale}, queue depths {depths:?}, shards {shard_counts:?})"
    );

    let batch_sizes = [1usize, 10, 100, 500, 1000, 5000];
    let mut detail_rows = Vec::new();
    let mut cells: BTreeMap<(usize, usize, usize), Cell> = BTreeMap::new();
    for &shards in &shard_counts {
        for batch in batch_sizes {
            for &qd in &depths {
                let cell = run_cell(scale, io_total, batch, qd, shards, want_series);
                detail_rows.push(Row::new(
                    format!("batch {batch} / qd {qd} / {shards} shard(s)"),
                    vec![
                        format!("{:.0}", cell.mean_mib_s),
                        format!("{:.0}", cell.post_sat_mib_s),
                        format!("{:.0}", cell.paper_secs),
                        format!("{}", cell.fsyncs),
                        format!("{}", cell.uring_peak),
                    ],
                ));
                cells.insert((shards, batch, qd), cell);
            }
        }
    }
    print_table(
        "Fig. 6 detail (per batch × queue depth × shards)",
        &["mean MiB/s", "post-sat MiB/s", "total s (paper-equiv)", "fsyncs", "ring peak"],
        &detail_rows,
    );
    if depths.len() > 1 {
        for &shards in &shard_counts {
            // batch-major rows, one post-saturation column per queue depth.
            let matrix: Vec<Row> = batch_sizes
                .iter()
                .map(|&batch| {
                    Row::new(
                        format!("batch {batch}"),
                        depths
                            .iter()
                            .map(|&qd| format!("{:.0}", cells[&(shards, batch, qd)].post_sat_mib_s))
                            .collect(),
                    )
                })
                .collect();
            let headers: Vec<String> = depths.iter().map(|q| format!("qd {q}")).collect();
            let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
            print_table(
                &format!("Fig. 6 post-saturation MiB/s, {shards} shard(s) (batch × queue depth)"),
                &header_refs,
                &matrix,
            );
        }
    }

    // Analysis pass: does growing the cleanup pool (one worker per stripe)
    // lift the post-saturation floor, or is the ceiling elsewhere?
    if shard_counts.len() > 1 {
        let (base, grown) = (shard_counts[0], *shard_counts.last().unwrap());
        println!("\n== Fig. 6 analysis: cleanup pool vs front-end/device ==");
        for &qd in &depths {
            let ratios: Vec<f64> = batch_sizes
                .iter()
                .filter_map(|&b| {
                    let one = cells[&(base, b, qd)].post_sat_mib_s;
                    let many = cells[&(grown, b, qd)].post_sat_mib_s;
                    (one > 1e-9).then(|| many / one)
                })
                .collect();
            let mean_ratio = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
            let verdict = if mean_ratio >= 1.15 {
                "cleanup-pool bound: striping the log (more drain workers) lifts the floor"
            } else if mean_ratio <= 0.87 {
                "striping hurts here: the workers contend for the same drain device"
            } else {
                "not cleanup-pool bound: the drain device / submission front-end sets the \
                 ceiling, extra workers change nothing"
            };
            println!(
                "qd {qd:>2}: post-saturation floor x{mean_ratio:.2} going {base} -> {grown} \
                 shard(s) — {verdict}"
            );
        }
        println!(
            "(pre-saturation throughput is submission-bound — fio's single writer — so the \
             shard axis moves it only via log-capacity partitioning; see sqsweep for the \
             multi-queue submission front-end that parallelizes that side)"
        );
    }
}
