//! Figure 6: influence of the cleanup-thread batch size (1 / 10 / 100 / 500
//! / 1000 / 5000 entries) under a 20 GiB random-write load with an 8 GiB log.
//!
//! Paper reference points: before saturation the batch size is irrelevant;
//! after it, batch=1 collapses to ≈21 MiB/s (one fsync per entry) while
//! batches ≥100 all land near the SSD's ≈80 MiB/s random-write speed.
//!
//! Usage: `fig6 [--scale N] [--gib G] [--queue-depth Q] [--series]`
//!
//! `--queue-depth Q` overlaps up to `Q` of each batch's propagation writes
//! (io_uring-style) on a `Q`-channel SSD; with `Q = 1` (default) the sweep
//! reproduces the paper's synchronous-drain numbers.

use fiosim::{run_job, JobSpec, RwMode};
use nvcache::NvCacheConfig;
use nvcache_bench::{arg_flag, arg_u64, print_series, print_table, Row, SystemKind, SystemSpec};
use simclock::{ActorClock, SimTime};

fn main() {
    let scale = arg_u64("--scale", 64);
    let gib = arg_u64("--gib", 20);
    let queue_depth = arg_u64("--queue-depth", 1).max(1) as usize;
    let io_total = (gib << 30) / scale;
    let want_series = arg_flag("--series");
    println!(
        "Fig. 6 — NVCache+SSD batching sweep, 8 GiB log (scale 1/{scale}, queue depth {queue_depth})"
    );

    let batch_sizes = [1usize, 10, 100, 500, 1000, 5000];
    let mut rows = Vec::new();
    for batch in batch_sizes {
        let clock = ActorClock::new();
        // Batch sizes are a *policy*, not a capacity: don't scale them.
        let scaled_batch = batch.max(1);
        let cfg = NvCacheConfig::default()
            .scaled(scale)
            .with_log_entries(((8u64 << 30) / 4096 / scale).max(64))
            .with_batching(scaled_batch, scaled_batch);
        let spec = SystemSpec::new(SystemKind::NvcacheSsd, scale)
            .with_nvcache_cfg(cfg)
            .with_queue_depth(queue_depth)
            .timing_only();
        let sys = nvcache_bench::build_system(&spec, &clock);
        let job = JobSpec {
            name: format!("batch-{batch}"),
            rw: RwMode::RandWrite,
            file_size: io_total,
            io_total,
            fsync_every: 1,
            direct: true,
            sample_interval: SimTime::from_millis(1000 / scale.min(1000)),
            ..JobSpec::default()
        };
        let result = run_job(&sys.fs, &job, &clock).expect("fio job");
        let nc = sys.nvcache.as_ref().expect("nvcache system");
        let stats = nc.stats().snapshot();
        // Post-saturation throughput from the cumulative curve: rate over
        // everything after the first interval that dropped below 60% of the
        // initial plateau (robust to the burst/stall cycles of big batches).
        let plateau = result.throughput.first().map_or(0.0, |&(_, v)| v);
        let sat_t = result.throughput.iter().find(|&&(_, v)| v < plateau * 0.6).map(|&(t, _)| t);
        let tail_tput = match sat_t {
            Some(t0) => {
                let at = |t: SimTime| {
                    result
                        .cumulative_gib
                        .iter()
                        .rev()
                        .find(|&&(ts, _)| ts <= t)
                        .map_or(0.0, |&(_, v)| v * 1024.0)
                };
                let end = result.elapsed;
                let mib = at(end) - at(t0);
                mib / (end - t0).as_secs_f64().max(1e-9)
            }
            None => result.mean_throughput_mib_s(),
        };
        let raw_s = result.elapsed.as_secs_f64();
        rows.push(Row::new(
            format!("batch {batch}"),
            vec![
                format!("{:.0}", result.mean_throughput_mib_s()),
                format!("{tail_tput:.0}"),
                format!("{:.0}", raw_s * scale as f64),
                format!("{}", stats.cleanup_fsyncs),
            ],
        ));
        if want_series {
            print_series(&format!("batch-{batch} throughput"), "MiB/s", scale, &result.throughput);
        }
        sys.shutdown(&clock);
    }
    print_table(
        "Fig. 6 summary",
        &["mean MiB/s", "post-sat MiB/s", "total s (paper-equiv)", "fsyncs"],
        &rows,
    );
}
