//! Multi-queue submission front-end sweep: per-core SQ/CQ pairs with
//! doorbell-batched stripe reservation versus per-write synchronous
//! submission, across write sizes and queue counts.
//!
//! Each cell runs N submitter threads against a striped-log NVCache on
//! simulated Optane NVMM (cleanup parked, burst sized well below log
//! capacity, so both arms measure pure submission cost). The synchronous
//! arm issues `pwrite` per op — one libc crossing plus one pwb/pfence/
//! psync sequence per write (the paper's Algorithm 1). The queued arm
//! copies each op into its SQ and commits whole bursts per doorbell: one
//! libc crossing and one fence pair per stripe chunk, so the fixed costs
//! amortize over the batch. Small writes (512 B – 1 KiB) are where this
//! pays — at 4 KiB the NVMM copy itself dominates and batching saves
//! little, which the sweep shows honestly.
//!
//! The run ends with a crash-mid-burst check: a torn burst (some doorbells
//! rung, a tail left unrung) is crashed with seeded cache-line eviction
//! and recovered; every acknowledged write must come back byte-identical,
//! every unrung submission must be gone.
//!
//! Usage: `sqsweep [--shards S] [--submitters N] [--writes W] [--batch B]
//! [--json PATH]`
//!
//! The acceptance gate (shards=4, 8 submitters): batched submission at
//! 512 B must reach ≥ 2× the synchronous write throughput.

use std::collections::BTreeMap;
use std::sync::Arc;

use blockdev::{SsdDevice, SsdProfile};
use nvcache::{Mount, NvCache, NvCacheConfig};
use nvcache_bench::{arg_str, arg_u64, percentiles_us, print_table, Json, PercentilesUs, Row};
use nvmm::{NvDimm, NvRegion, NvmmProfile};
use simclock::{ActorClock, SimTime};
use vfs::{Ext4, Ext4Profile, FileSystem, OpenFlags};

/// One measured arm: aggregate throughput plus the completion-latency
/// distribution (submit → acknowledged, virtual time).
struct Arm {
    mib_s: f64,
    lat: PercentilesUs,
}

fn mount_for(shards: usize, sq_pairs: usize, nb_entries: u64, clock: &ActorClock) -> Arc<NvCache> {
    let cfg = NvCacheConfig {
        nb_entries,
        batch_min: usize::MAX >> 1, // park cleanup: measure submission only
        batch_max: usize::MAX >> 1,
        fd_slots: 32,
        ..NvCacheConfig::default()
    }
    .with_log_shards(shards)
    .with_sq_pairs(sq_pairs);
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::optane()));
    let ssd = Arc::new(SsdDevice::new(SsdProfile::s4600()));
    let inner: Arc<dyn FileSystem> = Arc::new(Ext4::new("ext4+ssd", ssd, Ext4Profile::default()));
    Arc::new(
        NvCache::builder(NvRegion::whole(dimm))
            .backend(inner)
            .config(cfg)
            .mount(clock)
            .expect("mount"),
    )
}

/// Runs `threads` submitters, each writing `writes` ops of `size` bytes to
/// its own file. Queued arms drive one SQ/CQ pair per thread with one
/// doorbell per `batch` submissions; the sync arm is plain `pwrite`.
/// Throughput uses the makespan (slowest submitter's virtual elapsed).
fn run_arm(
    shards: usize,
    threads: usize,
    queued: bool,
    size: usize,
    writes: u64,
    batch: u64,
) -> Arm {
    let nb_entries = (threads as u64 * writes * 2).max(4096).next_multiple_of(shards as u64);
    let setup = ActorClock::new();
    let nc = mount_for(shards, if queued { threads } else { 0 }, nb_entries, &setup);
    let mut handles = Vec::new();
    for t in 0..threads {
        let nc = Arc::clone(&nc);
        handles.push(std::thread::spawn(move || {
            let clock = ActorClock::new();
            let fd = nc
                .open(&format!("/sq/f{t}"), OpenFlags::RDWR | OpenFlags::CREATE, &clock)
                .expect("open");
            let data = vec![t as u8 + 1; size];
            let mut lats: Vec<SimTime> = Vec::with_capacity(writes as usize);
            let t0 = clock.now();
            if queued {
                let mut qp = nc.queue_pair(t, &clock).expect("claim pair");
                let mut submitted: BTreeMap<u64, SimTime> = BTreeMap::new();
                let reap_into = |qp: &mut nvcache::QueuePair,
                                 submitted: &mut BTreeMap<u64, SimTime>,
                                 lats: &mut Vec<SimTime>| {
                    for c in qp.reap(&clock) {
                        c.result.as_ref().expect("completion");
                        let at = submitted.remove(&c.user_data).expect("known token");
                        lats.push(c.completed_at.saturating_sub(at));
                    }
                };
                for i in 0..writes {
                    let ud = qp.submit_pwrite(fd, &data, i * 4096, &clock).expect("submit");
                    submitted.insert(ud, clock.now());
                    if (i + 1) % batch == 0 {
                        qp.ring_doorbell(&clock);
                        reap_into(&mut qp, &mut submitted, &mut lats);
                    }
                }
                qp.ring_doorbell(&clock);
                reap_into(&mut qp, &mut submitted, &mut lats);
                assert!(submitted.is_empty(), "all submissions acknowledged");
            } else {
                for i in 0..writes {
                    let s = clock.now();
                    nc.pwrite(fd, &data, i * 4096, &clock).expect("pwrite");
                    lats.push(clock.now() - s);
                }
            }
            (clock.now() - t0, lats)
        }));
    }
    let mut makespan = SimTime::ZERO;
    let mut lats = Vec::new();
    for h in handles {
        let (elapsed, mut thread_lats) = h.join().expect("submitter");
        makespan = makespan.max(elapsed);
        lats.append(&mut thread_lats);
    }
    nc.abort();
    let bytes = (threads as u64 * writes * size as u64) as f64;
    Arm {
        mib_s: bytes / (1 << 20) as f64 / makespan.as_secs_f64().max(1e-12),
        lat: percentiles_us(&lats),
    }
}

/// Crash mid-burst: round-robin writes over 8 pairs, ring every third
/// batch, leave a tail unrung, crash with seeded eviction, recover, and
/// verify exactly the acknowledged writes.
fn crash_check(shards: usize) {
    let cfg = NvCacheConfig {
        nb_entries: 4096,
        batch_min: usize::MAX >> 1,
        batch_max: usize::MAX >> 1,
        fd_slots: 8,
        ..NvCacheConfig::default()
    }
    .with_log_shards(shards)
    .with_sq_pairs(8);
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(
        cfg.required_nvmm_bytes(),
        NvmmProfile::optane().with_eviction_probability(0.3),
    ));
    let ssd = Arc::new(SsdDevice::new(SsdProfile::s4600()));
    let inner: Arc<dyn FileSystem> = Arc::new(Ext4::new("ext4+ssd", ssd, Ext4Profile::default()));
    let cache = NvCache::builder(NvRegion::whole(Arc::clone(&dimm)))
        .backend(Arc::clone(&inner))
        .config(cfg.clone())
        .mount(&clock)
        .expect("mount");
    let fd = cache.open("/burst", OpenFlags::RDWR | OpenFlags::CREATE, &clock).expect("open");

    let mut model: Vec<u8> = Vec::new();
    let mut qps: Vec<_> = (0..8).map(|p| cache.queue_pair(p, &clock).expect("claim")).collect();
    let mut pending: Vec<Vec<(u64, u8, usize)>> = vec![Vec::new(); 8];
    for i in 0..256u64 {
        let p = (i % 8) as usize;
        let off = (i * 2711) % 60000;
        let len = 512 + (i as usize * 97) % 512;
        let byte = (i % 251) as u8 + 1;
        qps[p].submit_pwrite(fd, &vec![byte; len], off, &clock).expect("submit");
        pending[p].push((off, byte, len));
        // Ring two pairs out of three; the rest accumulate a torn tail.
        if pending[p].len() >= 3 && p % 3 != 2 {
            qps[p].ring_doorbell(&clock);
            for c in qps[p].reap(&clock) {
                c.result.as_ref().expect("acked");
            }
            for (off, byte, len) in pending[p].drain(..) {
                let end = off as usize + len;
                if model.len() < end {
                    model.resize(end, 0);
                }
                model[off as usize..end].fill(byte);
            }
        }
    }
    let torn: usize = pending.iter().map(Vec::len).sum();
    assert!(torn > 0, "the scenario must leave a torn tail");
    drop(qps); // unrung submissions are discarded, never acknowledged

    cache.abort();
    drop(cache);
    let crashed = Arc::new(dimm.crash_and_restart_seeded(42));
    inner.simulate_power_failure();
    let recovered = NvCache::builder(NvRegion::whole(crashed))
        .backend(Arc::clone(&inner))
        .config(cfg)
        .mode(Mount::Recover)
        .mount(&clock)
        .expect("recover");
    let fd = recovered.open("/burst", OpenFlags::RDONLY, &clock).expect("reopen");
    let size = recovered.fstat(fd, &clock).expect("fstat").size;
    assert_eq!(size, model.len() as u64, "recovered size != acked model");
    let mut buf = vec![0u8; model.len()];
    recovered.pread(fd, &mut buf, 0, &clock).expect("pread");
    assert_eq!(buf, model, "recovered bytes != acked model");
    recovered.shutdown(&clock);
    println!(
        "crash check: OK — {} acked writes recovered byte-identical, {torn} torn \
         (unacknowledged) submissions discarded",
        256 - torn
    );
}

fn main() {
    let shards = arg_u64("--shards", 4).max(1) as usize;
    let submitters = arg_u64("--submitters", 8).max(1) as usize;
    let writes = arg_u64("--writes", 2048).max(1);
    let batch = arg_u64("--batch", 32).max(1);
    let json_path = arg_str("--json");
    println!(
        "SQ sweep — doorbell-batched multi-queue front-end vs synchronous submission \
         ({shards} log shards, up to {submitters} submitters, {writes} writes each, \
         doorbell every {batch})"
    );

    let sizes = [512usize, 1024, 4096];
    let pair_counts: Vec<usize> =
        [1usize, 2, 4, 8].iter().copied().filter(|&p| p <= submitters).collect();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut accept_speedup: Option<f64> = None;
    for size in sizes {
        for &pairs in &pair_counts {
            let sync = run_arm(shards, pairs, false, size, writes, batch);
            let queued = run_arm(shards, pairs, true, size, writes, batch);
            let speedup = queued.mib_s / sync.mib_s.max(1e-12);
            if size == 512 && pairs == submitters {
                accept_speedup = Some(speedup);
            }
            rows.push(Row::new(
                format!("{size}B x{pairs}"),
                vec![
                    format!("{:.0}", sync.mib_s),
                    format!("{:.0}", queued.mib_s),
                    format!("{speedup:.2}x"),
                    format!("{:.2}/{:.2}", sync.lat.p50, sync.lat.p99),
                    format!("{:.2}/{:.2}", queued.lat.p50, queued.lat.p99),
                ],
            ));
            json_rows.push(Json::obj([
                ("write_size", Json::Int(size as i64)),
                ("sq_pairs", Json::Int(pairs as i64)),
                ("sync_mib_s", Json::Num(sync.mib_s)),
                ("queued_mib_s", Json::Num(queued.mib_s)),
                ("speedup", Json::Num(speedup)),
                ("sync_p50_us", Json::Num(sync.lat.p50)),
                ("sync_p99_us", Json::Num(sync.lat.p99)),
                ("sync_p999_us", Json::Num(sync.lat.p999)),
                ("queued_p50_us", Json::Num(queued.lat.p50)),
                ("queued_p99_us", Json::Num(queued.lat.p99)),
                ("queued_p999_us", Json::Num(queued.lat.p999)),
            ]));
        }
    }
    print_table(
        "SQ sweep (write size × queue pairs; throughput is the submitters' makespan)",
        &["sync MiB/s", "queued MiB/s", "speedup", "sync p50/p99 µs", "queued p50/p99 µs"],
        &rows,
    );

    crash_check(shards);

    let accept = accept_speedup.unwrap_or(0.0);
    let pass = accept >= 2.0;
    println!(
        "acceptance (512B, {submitters} pairs vs sync): {accept:.2}x — {}",
        if pass { "PASS (>= 2.0x)" } else { "FAIL (< 2.0x)" }
    );

    if let Some(path) = json_path {
        let doc = Json::obj([
            ("benchmark", Json::str("sqsweep")),
            (
                "config",
                Json::obj([
                    ("log_shards", Json::Int(shards as i64)),
                    ("submitters", Json::Int(submitters as i64)),
                    ("writes_per_submitter", Json::Int(writes as i64)),
                    ("doorbell_batch", Json::Int(batch as i64)),
                    ("nvmm_profile", Json::str("optane")),
                ]),
            ),
            ("rows", Json::Arr(json_rows)),
            (
                "acceptance",
                Json::obj([
                    ("required_speedup", Json::Num(2.0)),
                    ("achieved_speedup", Json::Num(accept)),
                    ("pass", Json::Bool(pass)),
                ]),
            ),
            ("crash_check", Json::str("ok")),
        ]);
        std::fs::write(&path, doc.render()).expect("write json snapshot");
        println!("wrote {path}");
    }
    assert!(pass, "acceptance gate failed");
}
