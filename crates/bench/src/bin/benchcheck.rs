//! Validates every committed `BENCH_*.json` perf snapshot: well-formed
//! JSON, a top-level object carrying a name key (`benchmark` or `figure`),
//! a `config` object, and at least one data section (`rows`, `mixes` or
//! `saturation`) that is non-empty.
//!
//! Usage: `benchcheck [DIR]` (default: current directory). Exits non-zero
//! listing every violation, so CI catches a snapshot that a binary change
//! silently broke.

use nvcache_bench::Json;

/// One snapshot's validation result.
fn check(name: &str, text: &str) -> Result<String, String> {
    let doc = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let Json::Obj(_) = &doc else {
        return Err("top level is not an object".into());
    };
    let label = match doc.get("benchmark").or_else(|| doc.get("figure")) {
        Some(Json::Str(s)) if !s.is_empty() => s.clone(),
        Some(_) => return Err("name key (benchmark/figure) is not a string".into()),
        None => return Err("missing name key (\"benchmark\" or \"figure\")".into()),
    };
    match doc.get("config") {
        Some(Json::Obj(pairs)) if !pairs.is_empty() => {}
        Some(Json::Obj(_)) => return Err("\"config\" is empty".into()),
        Some(_) => return Err("\"config\" is not an object".into()),
        None => return Err("missing \"config\"".into()),
    }
    let mut data_rows = 0usize;
    for key in ["rows", "mixes"] {
        match doc.get(key) {
            Some(Json::Arr(items)) => data_rows += items.len(),
            Some(_) => return Err(format!("\"{key}\" is not an array")),
            None => {}
        }
    }
    if let Some(sat) = doc.get("saturation") {
        match sat.get("ladder") {
            Some(Json::Arr(items)) => data_rows += items.len(),
            _ => return Err("\"saturation\" lacks a \"ladder\" array".into()),
        }
    }
    if data_rows == 0 {
        return Err("no data: need a non-empty \"rows\", \"mixes\" or \"saturation\"".into());
    }
    Ok(format!("{name}: ok ({label}, {data_rows} data rows)"))
}

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| ".".into());
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {dir}: {e}"))
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().into_string().ok()?;
            (name.starts_with("BENCH_") && name.ends_with(".json")).then_some(name)
        })
        .collect();
    names.sort();
    if names.is_empty() {
        eprintln!("benchcheck: no BENCH_*.json snapshots under {dir}");
        std::process::exit(1);
    }
    let mut failures = 0;
    for name in &names {
        let path = format!("{dir}/{name}");
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{name}: unreadable: {e}");
                failures += 1;
                continue;
            }
        };
        match check(name, &text) {
            Ok(msg) => println!("{msg}"),
            Err(e) => {
                eprintln!("{name}: FAIL: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("benchcheck: {failures}/{} snapshots failed", names.len());
        std::process::exit(1);
    }
    println!("benchcheck: {} snapshots ok", names.len());
}
