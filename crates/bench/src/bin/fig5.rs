//! Figure 5: NVCache under a 20 GiB random-write load with varying NVMM log
//! sizes (100 MB / 1 GiB / 8 GiB / 32 GiB).
//!
//! Paper reference points: with an 8 GiB log the throughput holds ≈556 MiB/s
//! until saturation at ≈18 s, then collapses to ≈78 MiB/s — the SSD's random
//! write speed; smaller logs saturate earlier and land on the same floor.
//!
//! Usage: `fig5 [--scale N] [--gib G] [--shards S] [--queue-depth Q]
//! [--sq-pairs P] [--json PATH] [--series]`
//!
//! `--shards S` splits the NVMM log into `S` striped sub-logs (each with its
//! own cleanup worker and its own Fig. 5 back-pressure coupling); the
//! summary then also prints the per-stripe saturation events.
//!
//! `--queue-depth Q` gives the SSD `Q` parallel command channels and lets
//! each cleanup worker keep `Q` propagation writes in flight on its
//! io_uring-style submission ring (1 = the paper's synchronous drain). The
//! post-saturation floor then rises from the SSD's serial random-write
//! speed towards `Q`-way-overlapped drain throughput.
//!
//! `--sq-pairs P` additionally measures the multi-queue submission
//! front-end on each fresh mount *before* the fio load: a burst of small
//! writes submitted through `P` SQ/CQ pairs and committed by doorbell-
//! batched stripe reservation, against the same burst issued synchronously.
//! The extra columns report the batched front-end throughput and its
//! speedup over per-write submission (the log-size axis does not move
//! these — the front-end is capacity-independent).
//!
//! `--json PATH` writes the whole summary (per-row p50/p99 write latency,
//! saturation, configuration) as a machine-readable snapshot, e.g. the
//! committed `BENCH_fig5.json`.

use std::sync::Arc;

use fiosim::{run_job, JobSpec, RwMode};
use nvcache::{NvCache, NvCacheConfig};
use nvcache_bench::{
    arg_flag, arg_str, arg_u64, print_series, print_table, CommonArgs, Json, Row, SystemKind,
};
use simclock::{ActorClock, SimTime};

/// Front-end burst measurement: batched (queued) MiB/s and the speedup
/// over the same burst submitted synchronously.
struct FrontEnd {
    queued_mib_s: f64,
    speedup: f64,
}

/// Issues up to `pairs × 64` 1 KiB writes twice on the fresh mount — once
/// synchronously, once through the SQ/CQ pairs with one doorbell per pair
/// — and compares virtual cost. Runs before the fio load so the log is
/// empty, and the burst is capped to half the log's entry capacity so
/// both arms measure submission cost, not drain back-pressure.
fn front_end_burst(
    nc: &Arc<NvCache>,
    pairs: usize,
    nb_entries: u64,
    clock: &ActorClock,
) -> FrontEnd {
    use vfs::{FileSystem, OpenFlags};
    let writes_per_pair: u64 = (nb_entries / 2 / pairs.max(1) as u64).clamp(1, 64);
    const WRITE_LEN: usize = 1024;
    let fd = nc.open("/fig5-frontend", OpenFlags::RDWR | OpenFlags::CREATE, clock).unwrap();

    let sync_t0 = clock.now();
    for i in 0..pairs as u64 * writes_per_pair {
        nc.pwrite(fd, &[0x5a; WRITE_LEN], i * 4096, clock).unwrap();
    }
    let sync_cost = clock.now() - sync_t0;

    // Drain the sync arm's entries so the queued arm also starts from an
    // empty, back-pressure-free log.
    nc.flush_log(clock);

    let base = pairs as u64 * writes_per_pair * 4096;
    let queued_t0 = clock.now();
    for p in 0..pairs {
        let mut qp = nc.queue_pair(p, clock).unwrap();
        for i in 0..writes_per_pair {
            let off = base + (p as u64 * writes_per_pair + i) * 4096;
            qp.submit_pwrite(fd, &[0xa5; WRITE_LEN], off, clock).unwrap();
        }
        qp.ring_doorbell(clock);
        assert_eq!(qp.reap(clock).len() as u64, writes_per_pair);
    }
    let queued_cost = clock.now() - queued_t0;

    let bytes = (pairs as u64 * writes_per_pair) as f64 * WRITE_LEN as f64;
    FrontEnd {
        queued_mib_s: bytes / (1 << 20) as f64 / queued_cost.as_secs_f64().max(1e-12),
        speedup: sync_cost.as_secs_f64() / queued_cost.as_secs_f64().max(1e-12),
    }
}

fn main() {
    let common = CommonArgs::parse();
    let scale = common.scale;
    let gib = arg_u64("--gib", 20);
    let io_total = (gib << 30) / scale;
    let want_series = arg_flag("--series");
    let sq_pairs = arg_u64("--sq-pairs", 0) as usize;
    let json_path = arg_str("--json");
    println!(
        "Fig. 5 — NVCache+SSD randwrite {gib} GiB with variable log size ({}{})",
        common.describe(),
        if sq_pairs > 0 { format!(", {sq_pairs} SQ pairs") } else { String::new() }
    );

    let log_sizes: [(&str, u64); 4] =
        [("100MB", 100 << 20), ("1G", 1 << 30), ("8G", 8 << 30), ("32G", 32 << 30)];
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for (label, bytes) in log_sizes {
        let clock = ActorClock::new();
        let mut cfg = NvCacheConfig::default()
            .scaled(scale)
            .with_log_entries((bytes / 4096 / scale).max(64));
        if common.shards > 1 {
            cfg = cfg.with_log_shards(common.shards);
        }
        if sq_pairs > 0 {
            cfg = cfg.with_sq_pairs(sq_pairs);
        }
        let nb_entries = cfg.nb_entries;
        let spec = common.spec(SystemKind::NvcacheSsd).with_nvcache_cfg(cfg).timing_only();
        let sys = nvcache_bench::build_system(&spec, &clock);
        let nc = sys.nvcache.as_ref().expect("nvcache system");
        let front = (sq_pairs > 0).then(|| front_end_burst(nc, sq_pairs, nb_entries, &clock));
        let job = JobSpec {
            name: format!("log-{label}"),
            rw: RwMode::RandWrite,
            file_size: io_total,
            io_total,
            fsync_every: 1,
            direct: true,
            sample_interval: SimTime::from_millis(1000 / scale.min(1000)),
            ..JobSpec::default()
        };
        let result = run_job(&sys.fs, &job, &clock).expect("fio job");
        let stats = nc.stats().snapshot();
        // Saturation point: first interval whose throughput drops below 60%
        // of the initial plateau.
        let plateau = result.throughput.first().map_or(0.0, |&(_, v)| v);
        let sat = result
            .throughput
            .iter()
            .find(|&&(_, v)| v < plateau * 0.6)
            .map(|&(t, _)| t.as_secs_f64());
        let raw_s = result.elapsed.as_secs_f64();
        let per_stripe_waits = stats
            .per_shard
            .iter()
            .map(|s| s.log_full_waits.to_string())
            .collect::<Vec<_>>()
            .join("/");
        let mut cells = vec![
            format!("{:.0}", result.mean_throughput_mib_s()),
            sat.map_or("never".into(), |s| format!("{:.1}", s * scale as f64)),
            format!("{:.0}", raw_s * scale as f64),
            format!("{}", stats.log_full_waits),
            per_stripe_waits,
        ];
        if let Some(fe) = &front {
            cells.push(format!("{:.0}", fe.queued_mib_s));
            cells.push(format!("{:.2}x", fe.speedup));
        }
        rows.push(Row::new(format!("log {label}"), cells));
        let mut jrow = vec![
            ("log", Json::str(label)),
            ("mean_mib_s", Json::Num(result.mean_throughput_mib_s())),
            ("p50_write_us", Json::Num(result.p50_latency.as_micros_f64())),
            ("p99_write_us", Json::Num(result.p99_latency.as_micros_f64())),
            ("p999_write_us", Json::Num(result.p999_latency.as_micros_f64())),
            ("saturation_paper_s", sat.map_or(Json::Null, |s| Json::Num(s * scale as f64))),
            ("total_paper_s", Json::Num(raw_s * scale as f64)),
            ("log_full_waits", Json::Int(stats.log_full_waits as i64)),
        ];
        if let Some(fe) = &front {
            jrow.push((
                "front_end",
                Json::obj([
                    ("queued_mib_s", Json::Num(fe.queued_mib_s)),
                    ("speedup_vs_sync", Json::Num(fe.speedup)),
                ]),
            ));
        }
        json_rows.push(Json::obj(jrow));
        if want_series {
            print_series(&format!("log-{label} throughput"), "MiB/s", scale, &result.throughput);
        }
        sys.shutdown(&clock);
    }
    let mut columns = vec![
        "mean MiB/s",
        "saturation @s (paper-equiv)",
        "total s (paper-equiv)",
        "full-log waits",
        "waits/stripe",
    ];
    if sq_pairs > 0 {
        columns.push("front-end MiB/s");
        columns.push("fe speedup");
    }
    print_table("Fig. 5 summary", &columns, &rows);

    if let Some(path) = json_path {
        let doc = Json::obj([
            ("figure", Json::str("fig5")),
            (
                "config",
                Json::obj([
                    ("scale", Json::Int(scale as i64)),
                    ("gib", Json::Int(gib as i64)),
                    ("log_shards", Json::Int(common.shards as i64)),
                    ("queue_depth", Json::Int(common.queue_depth as i64)),
                    ("sq_pairs", Json::Int(sq_pairs as i64)),
                ]),
            ),
            ("rows", Json::Arr(json_rows)),
        ]);
        std::fs::write(&path, doc.render()).expect("write json snapshot");
        println!("\nwrote {path}");
    }
}
