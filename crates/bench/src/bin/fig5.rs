//! Figure 5: NVCache under a 20 GiB random-write load with varying NVMM log
//! sizes (100 MB / 1 GiB / 8 GiB / 32 GiB).
//!
//! Paper reference points: with an 8 GiB log the throughput holds ≈556 MiB/s
//! until saturation at ≈18 s, then collapses to ≈78 MiB/s — the SSD's random
//! write speed; smaller logs saturate earlier and land on the same floor.
//!
//! Usage: `fig5 [--scale N] [--gib G] [--shards S] [--queue-depth Q] [--series]`
//!
//! `--shards S` splits the NVMM log into `S` striped sub-logs (each with its
//! own cleanup worker and its own Fig. 5 back-pressure coupling); the
//! summary then also prints the per-stripe saturation events.
//!
//! `--queue-depth Q` gives the SSD `Q` parallel command channels and lets
//! each cleanup worker keep `Q` propagation writes in flight on its
//! io_uring-style submission ring (1 = the paper's synchronous drain). The
//! post-saturation floor then rises from the SSD's serial random-write
//! speed towards `Q`-way-overlapped drain throughput.

use fiosim::{run_job, JobSpec, RwMode};
use nvcache::NvCacheConfig;
use nvcache_bench::{arg_flag, arg_u64, print_series, print_table, CommonArgs, Row, SystemKind};
use simclock::{ActorClock, SimTime};

fn main() {
    let common = CommonArgs::parse();
    let scale = common.scale;
    let gib = arg_u64("--gib", 20);
    let io_total = (gib << 30) / scale;
    let want_series = arg_flag("--series");
    println!(
        "Fig. 5 — NVCache+SSD randwrite {gib} GiB with variable log size ({})",
        common.describe()
    );

    let log_sizes: [(&str, u64); 4] =
        [("100MB", 100 << 20), ("1G", 1 << 30), ("8G", 8 << 30), ("32G", 32 << 30)];
    let mut rows = Vec::new();
    for (label, bytes) in log_sizes {
        let clock = ActorClock::new();
        let mut cfg = NvCacheConfig::default()
            .scaled(scale)
            .with_log_entries((bytes / 4096 / scale).max(64));
        if common.shards > 1 {
            cfg = cfg.with_log_shards(common.shards);
        }
        let spec = common.spec(SystemKind::NvcacheSsd).with_nvcache_cfg(cfg).timing_only();
        let sys = nvcache_bench::build_system(&spec, &clock);
        let job = JobSpec {
            name: format!("log-{label}"),
            rw: RwMode::RandWrite,
            file_size: io_total,
            io_total,
            fsync_every: 1,
            direct: true,
            sample_interval: SimTime::from_millis(1000 / scale.min(1000)),
            ..JobSpec::default()
        };
        let result = run_job(&sys.fs, &job, &clock).expect("fio job");
        let nc = sys.nvcache.as_ref().expect("nvcache system");
        let stats = nc.stats().snapshot();
        // Saturation point: first interval whose throughput drops below 60%
        // of the initial plateau.
        let plateau = result.throughput.first().map_or(0.0, |&(_, v)| v);
        let sat = result
            .throughput
            .iter()
            .find(|&&(_, v)| v < plateau * 0.6)
            .map(|&(t, _)| t.as_secs_f64());
        let raw_s = result.elapsed.as_secs_f64();
        let per_stripe_waits = stats
            .per_shard
            .iter()
            .map(|s| s.log_full_waits.to_string())
            .collect::<Vec<_>>()
            .join("/");
        rows.push(Row::new(
            format!("log {label}"),
            vec![
                format!("{:.0}", result.mean_throughput_mib_s()),
                sat.map_or("never".into(), |s| format!("{:.1}", s * scale as f64)),
                format!("{:.0}", raw_s * scale as f64),
                format!("{}", stats.log_full_waits),
                per_stripe_waits,
            ],
        ));
        if want_series {
            print_series(&format!("log-{label} throughput"), "MiB/s", scale, &result.throughput);
        }
        sys.shutdown(&clock);
    }
    print_table(
        "Fig. 5 summary",
        &[
            "mean MiB/s",
            "saturation @s (paper-equiv)",
            "total s (paper-equiv)",
            "full-log waits",
            "waits/stripe",
        ],
        &rows,
    );
}
