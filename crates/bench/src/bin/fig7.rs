//! Figure 7: NVCache read/write throughput under a mixed 50/50 random
//! workload on a 10 GiB file, sweeping the read-cache size (100 / 10 K /
//! 100 K / 250 K / 1 M entries).
//!
//! Paper reference point: the curves are flat — the read cache exists for
//! correctness (dirty reads), not performance, because the kernel page cache
//! already serves reads. The sweep must show no meaningful trend.
//!
//! Usage: `fig7 [--scale N] [--gib G] [--shards S] [--queue-depth Q]
//! [--series]`

use fiosim::{run_job, JobSpec, RwMode};
use nvcache::NvCacheConfig;
use nvcache_bench::{arg_flag, arg_u64, print_series, print_table, CommonArgs, Row, SystemKind};
use simclock::{ActorClock, SimTime};

fn main() {
    let args = CommonArgs::parse();
    let scale = args.scale;
    let gib = arg_u64("--gib", 10);
    let file_size = (gib << 30) / scale;
    let io_total = file_size / 2;
    let want_series = arg_flag("--series");
    println!(
        "Fig. 7 — NVCache+SSD randrw 50/50 on {gib} GiB, read-cache sweep ({})",
        args.describe()
    );

    let cache_sizes: [(&str, usize); 5] =
        [("100", 100), ("10K", 10_000), ("100K", 100_000), ("250K", 250_000), ("1M", 1_000_000)];
    let mut rows = Vec::new();
    for (label, pages) in cache_sizes {
        let clock = ActorClock::new();
        let cfg = NvCacheConfig::default()
            .scaled(scale)
            .with_log_entries(((8u64 << 30) / 4096 / scale).max(64))
            .with_read_cache_pages((pages / scale as usize).max(8));
        let spec = args.spec(SystemKind::NvcacheSsd).with_nvcache_cfg(cfg);
        let sys = nvcache_bench::build_system(&spec, &clock);
        let job = JobSpec {
            name: format!("cache-{label}"),
            rw: RwMode::RandRw { read_pct: 50 },
            file_size,
            io_total,
            fsync_every: 1,
            direct: true,
            prefill: true,
            sample_interval: SimTime::from_millis(1000 / scale.min(1000)),
            ..JobSpec::default()
        };
        let result = run_job(&sys.fs, &job, &clock).expect("fio job");
        let nc = sys.nvcache.as_ref().expect("nvcache system");
        let stats = nc.stats().snapshot();
        let hits = stats.read_hits as f64;
        let total = (stats.read_hits + stats.read_misses) as f64;
        let secs = result.elapsed.as_secs_f64();
        rows.push(Row::new(
            format!("cache {label}"),
            vec![
                format!("{:.1}", result.written_bytes as f64 / (1 << 20) as f64 / secs),
                format!("{:.1}", result.read_bytes as f64 / (1 << 20) as f64 / secs),
                format!("{:.0}%", if total > 0.0 { hits / total * 100.0 } else { 0.0 }),
                format!("{}", stats.dirty_misses),
            ],
        ));
        if want_series {
            print_series(
                &format!("cache-{label} write-tput"),
                "MiB/s",
                scale,
                &result.write_throughput,
            );
            print_series(
                &format!("cache-{label} read-tput"),
                "MiB/s",
                scale,
                &result.read_throughput,
            );
        }
        sys.shutdown(&clock);
    }
    print_table(
        "Fig. 7 summary",
        &["write MiB/s", "read MiB/s", "hit rate", "dirty misses"],
        &rows,
    );
}
