//! Figure 4: FIO random-write-intensive workload, 20 GiB, five systems —
//! instantaneous throughput, average latency and cumulative written data
//! over (virtual) time.
//!
//! Paper reference points (ideal case, 32 GiB log — never saturates):
//! NVCache ≈493 MiB/s finishing in 42 s; NOVA ≈403 MiB/s in 51 s;
//! DM-WriteCache in 71 s; Ext4-DAX in 2 min 29 s; SSD in >22 min.
//!
//! Usage: `fig4 [--scale N] [--gib G] [--shards S] [--queue-depth Q]
//! [--series]`

use fiosim::{run_job, JobSpec, RwMode};
use nvcache::NvCacheConfig;
use nvcache_bench::{arg_flag, arg_u64, print_series, print_table, CommonArgs, Row, SystemKind};
use simclock::{ActorClock, SimTime};

fn main() {
    let args = CommonArgs::parse();
    let scale = args.scale;
    let gib = arg_u64("--gib", 20);
    let io_total = (gib << 30) / scale;
    let want_series = arg_flag("--series");
    println!("Fig. 4 — FIO randwrite {gib} GiB, bs=4k fsync=1 direct=1 ({})", args.describe());

    let mut rows = Vec::new();
    for kind in SystemKind::fig4() {
        let clock = ActorClock::new();
        // 32 GiB log (paper: the log never saturates in this experiment).
        let cfg = NvCacheConfig::default()
            .scaled(scale)
            .with_log_entries(((32u64 << 30) / 4096 / scale).max(64));
        let spec = args.spec(kind).with_nvcache_cfg(cfg).timing_only();
        let sys = nvcache_bench::build_system(&spec, &clock);
        let job = JobSpec {
            name: sys.name.into(),
            rw: RwMode::RandWrite,
            file_size: io_total,
            io_total,
            fsync_every: 1,
            direct: true,
            sample_interval: SimTime::from_millis(1000 / scale.min(1000)),
            ..JobSpec::default()
        };
        let result = run_job(&sys.fs, &job, &clock).expect("fio job");
        let raw_s = result.elapsed.as_secs_f64();
        rows.push(Row::new(
            sys.name,
            vec![
                format!("{:.0}", result.mean_throughput_mib_s()),
                format!("{:.1}", result.mean_latency.as_micros_f64()),
                format!("{raw_s:.2}"),
                format!("{:.0}", raw_s * scale as f64),
            ],
        ));
        if want_series {
            print_series(&format!("{} throughput", sys.name), "MiB/s", scale, &result.throughput);
            print_series(&format!("{} avg-latency", sys.name), "us", scale, &result.avg_latency);
            let gib_series: Vec<(SimTime, f64)> = result.cumulative_gib;
            print_series(&format!("{} written", sys.name), "GiB", scale, &gib_series);
        }
        sys.shutdown(&clock);
    }
    print_table("Fig. 4 summary", &["MiB/s", "lat µs", "raw s", "paper-equiv s"], &rows);
}
