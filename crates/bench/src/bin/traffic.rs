//! Multi-tenant traffic engine snapshots: replays two deterministic tenant
//! mixes against fresh NVCache+SSD mounts and sweeps an open-loop tenant's
//! offered rate to find the saturation knee.
//!
//! Usage: `traffic [--smoke] [--seed N] [--ops N] [--scale N] [--json PATH]`
//!
//! * `--smoke` — seconds-scale run for CI: shrinks op counts and the rate
//!   ladder, and replays the first mix twice asserting the two runs land on
//!   the same final virtual clock (the engine's determinism contract).
//! * `--json PATH` — writes the machine-readable snapshot, e.g. the
//!   committed `BENCH_traffic.json`.
//!
//! Every mount parks NVCache's background cleanup (`batch_min`/`batch_max`
//! ≈ `usize::MAX`) and lets the engine drain the log at fixed op counts, so
//! virtual-time results are exactly reproducible per seed.

use nvcache::NvCacheConfig;
use nvcache_bench::{
    arg_flag, arg_str, arg_u64, build_system, print_table, Json, PercentilesUs, Row, SystemKind,
    SystemSpec,
};
use simclock::{ActorClock, SimTime};
use traffic::{
    Arrival, Burst, EngineConfig, OpMix, SizeDist, TenantKind, TenantSpec, TrafficReport,
    TrafficTarget,
};

/// A named tenant mix.
struct Mix {
    name: &'static str,
    tenants: Vec<TenantSpec>,
}

/// OLTP-flavoured mix: WAL-heavy LSM writes, synchronous SQL transactions
/// and a read-mostly file scanner sharing one mount.
fn mix_oltp(ops: u64) -> Mix {
    Mix {
        name: "oltp",
        tenants: vec![
            TenantSpec {
                name: "rock-wal".into(),
                prefix: "/rock".into(),
                kind: TenantKind::Rocklet { keys: 256 },
                mix: OpMix { read_pct: 20, fsync_every: 1 },
                arrival: Arrival::ClosedLoop { concurrency: 2 },
                theta: 0.9,
                ops,
                size: SizeDist::Fixed(256),
            },
            TenantSpec {
                name: "sql-txn".into(),
                prefix: "/sql".into(),
                kind: TenantKind::Sqlight { rows: 128 },
                mix: OpMix { read_pct: 50, fsync_every: 1 },
                arrival: Arrival::OpenLoop { rate_ops_per_sec: 2_000.0, workers: 2, burst: None },
                theta: 0.7,
                ops,
                size: SizeDist::Uniform { min: 64, max: 512 },
            },
            TenantSpec {
                name: "fs-scan".into(),
                prefix: "/scan".into(),
                kind: TenantKind::RawFs { files: 8, file_size: 512 << 10 },
                mix: OpMix { read_pct: 90, fsync_every: 8 },
                arrival: Arrival::ClosedLoop { concurrency: 2 },
                theta: 0.6,
                ops,
                size: SizeDist::Choice(vec![(4 << 10, 3), (64 << 10, 1)]),
            },
        ],
    }
}

/// Bursty read-dominated mix: a zipf-hot open-loop reader with on/off
/// phases next to a closed-loop LSM point-lookup tenant.
fn mix_bursty_read(ops: u64) -> Mix {
    Mix {
        name: "bursty-read",
        tenants: vec![
            TenantSpec {
                name: "hot-read".into(),
                prefix: "/hot".into(),
                kind: TenantKind::RawFs { files: 16, file_size: 256 << 10 },
                mix: OpMix { read_pct: 100, fsync_every: 0 },
                arrival: Arrival::OpenLoop {
                    rate_ops_per_sec: 8_000.0,
                    workers: 4,
                    burst: Some(Burst {
                        on: SimTime::from_millis(10),
                        off: SimTime::from_millis(30),
                    }),
                },
                theta: 0.95,
                ops,
                size: SizeDist::Fixed(4096),
            },
            TenantSpec {
                name: "rock-read".into(),
                prefix: "/rockr".into(),
                kind: TenantKind::Rocklet { keys: 512 },
                mix: OpMix { read_pct: 90, fsync_every: 0 },
                arrival: Arrival::ClosedLoop { concurrency: 2 },
                theta: 0.8,
                ops,
                size: SizeDist::Fixed(128),
            },
        ],
    }
}

/// The open-loop tenant whose offered rate the saturation sweep ladders.
fn saturation_tenant(ops: u64, rate: f64) -> TenantSpec {
    TenantSpec {
        name: "fs-mixed".into(),
        prefix: "/sat".into(),
        kind: TenantKind::RawFs { files: 8, file_size: 256 << 10 },
        mix: OpMix { read_pct: 50, fsync_every: 4 },
        arrival: Arrival::OpenLoop { rate_ops_per_sec: rate, workers: 2, burst: None },
        theta: 0.8,
        ops,
        size: SizeDist::Fixed(8 << 10),
    }
}

/// Builds a fresh parked-cleanup NVCache+SSD mount and runs the tenants.
fn run_on_fresh_mount(tenants: &[TenantSpec], seed: u64, scale: u64) -> TrafficReport {
    let clock = ActorClock::new();
    let cfg = NvCacheConfig {
        nb_entries: 64 * 1024,
        batch_min: usize::MAX >> 1,
        batch_max: usize::MAX >> 1,
        fd_slots: 1024,
        ..NvCacheConfig::default()
    };
    // Content must be kept (no `timing_only()`): the DB tenants read back
    // their own SSTables/pages through the cache.
    let spec = SystemSpec::new(SystemKind::NvcacheSsd, scale).with_nvcache_cfg(cfg);
    let sys = build_system(&spec, &clock);
    let nc = sys.nvcache.clone().expect("nvcache system");
    let target = TrafficTarget::nvcache(nc);
    let engine_cfg = EngineConfig { seed, flush_every: 256, start: clock.now() };
    let report = traffic::run(&target, tenants, &engine_cfg).expect("traffic run");
    sys.shutdown(&clock);
    report
}

fn kind_label(spec: &TenantSpec) -> &'static str {
    match spec.kind {
        TenantKind::RawFs { .. } => "rawfs",
        TenantKind::Rocklet { .. } => "rocklet",
        TenantKind::Sqlight { .. } => "sqlight",
    }
}

fn main() {
    let smoke = arg_flag("--smoke");
    let seed = arg_u64("--seed", 42);
    let scale = arg_u64("--scale", 64);
    let default_ops = if smoke { 120 } else { 600 };
    let ops = arg_u64("--ops", default_ops);
    let json_path = arg_str("--json");
    println!(
        "Traffic engine — {} mode, seed {seed}, {ops} ops/tenant, scale 1/{scale}",
        if smoke { "smoke" } else { "full" }
    );

    let mixes = vec![mix_oltp(ops), mix_bursty_read(ops)];
    let mut json_mixes = Vec::new();
    let mut first_final_clock = None;
    for mix in &mixes {
        let report = run_on_fresh_mount(&mix.tenants, seed, scale);
        if first_final_clock.is_none() {
            first_final_clock = Some(report.final_clock);
        }
        let mut rows = Vec::new();
        let mut json_tenants = Vec::new();
        for (spec, t) in mix.tenants.iter().zip(&report.tenants) {
            let p = PercentilesUs::of(&t.all);
            rows.push(Row::new(
                t.name.clone(),
                vec![
                    kind_label(spec).into(),
                    format!("{}", t.ops),
                    format!("{:.1}", p.p50),
                    format!("{:.1}", p.p99),
                    format!("{:.1}", p.p999),
                    format!("{:.0}", t.achieved_ops_per_sec),
                    t.offered_ops_per_sec.map_or("closed".into(), |r| format!("{r:.0}")),
                ],
            ));
            json_tenants.push(Json::obj([
                ("name", Json::str(t.name.clone())),
                ("kind", Json::str(kind_label(spec))),
                ("ops", Json::Int(t.ops as i64)),
                ("p50_us", Json::Num(p.p50)),
                ("p99_us", Json::Num(p.p99)),
                ("p999_us", Json::Num(p.p999)),
                ("achieved_ops_s", Json::Num(t.achieved_ops_per_sec)),
                ("offered_ops_s", t.offered_ops_per_sec.map_or(Json::Null, Json::Num)),
                ("saturation_ratio", Json::Num(t.saturation_ratio())),
            ]));
        }
        print_table(
            &format!("mix {} ({:.3} virtual s)", mix.name, report.elapsed().as_secs_f64()),
            &["kind", "ops", "p50 µs", "p99 µs", "p999 µs", "achieved op/s", "offered op/s"],
            &rows,
        );
        json_mixes.push(Json::obj([
            ("name", Json::str(mix.name)),
            ("elapsed_virtual_s", Json::Num(report.elapsed().as_secs_f64())),
            ("tenants", Json::Arr(json_tenants)),
        ]));
    }

    if smoke {
        // Determinism proof: replay the first mix and require the exact
        // same final virtual clock.
        let again = run_on_fresh_mount(&mixes[0].tenants, seed, scale);
        assert_eq!(
            Some(again.final_clock),
            first_final_clock,
            "smoke determinism check: two same-seed runs diverged"
        );
        println!("\nsmoke determinism check: OK ({:?})", again.final_clock);
    }

    // ---- Saturation sweep: offered-rate ladder on a fresh mount each. ----
    let ladder: &[f64] = if smoke {
        &[1_000.0, 8_000.0]
    } else {
        &[1_000.0, 4_000.0, 16_000.0, 64_000.0, 256_000.0, 1_000_000.0]
    };
    let sat_ops = ops.min(400);
    let mut sat_rows = Vec::new();
    let mut json_ladder = Vec::new();
    let mut knee = None;
    for &rate in ladder {
        let spec = saturation_tenant(sat_ops, rate);
        let report = run_on_fresh_mount(std::slice::from_ref(&spec), seed, scale);
        let t = &report.tenants[0];
        let ratio = t.saturation_ratio();
        if knee.is_none() && ratio < 0.95 {
            knee = Some(rate);
        }
        sat_rows.push(Row::new(
            format!("{rate:.0} op/s"),
            vec![
                format!("{:.0}", t.achieved_ops_per_sec),
                format!("{ratio:.3}"),
                format!("{:.1}", PercentilesUs::of(&t.all).p99),
            ],
        ));
        json_ladder.push(Json::obj([
            ("offered_ops_s", Json::Num(rate)),
            ("achieved_ops_s", Json::Num(t.achieved_ops_per_sec)),
            ("ratio", Json::Num(ratio)),
            ("p99_us", Json::Num(PercentilesUs::of(&t.all).p99)),
        ]));
    }
    print_table(
        &format!(
            "saturation sweep (fs-mixed, knee {} op/s)",
            knee.map_or("none".into(), |k| format!("{k:.0}"))
        ),
        &["achieved op/s", "achieved/offered", "p99 µs"],
        &sat_rows,
    );

    if let Some(path) = json_path {
        let doc = Json::obj([
            ("benchmark", Json::str("traffic")),
            (
                "config",
                Json::obj([
                    ("seed", Json::Int(seed as i64)),
                    ("scale", Json::Int(scale as i64)),
                    ("ops_per_tenant", Json::Int(ops as i64)),
                    ("flush_every", Json::Int(256)),
                    ("smoke", Json::Bool(smoke)),
                ]),
            ),
            ("mixes", Json::Arr(json_mixes)),
            (
                "saturation",
                Json::obj([
                    ("tenant", Json::str("fs-mixed")),
                    ("ops", Json::Int(sat_ops as i64)),
                    ("knee_ops_s", knee.map_or(Json::Null, Json::Num)),
                    ("ladder", Json::Arr(json_ladder)),
                ]),
            ),
        ]);
        std::fs::write(&path, doc.render()).expect("write json snapshot");
        println!("\nwrote {path}");
    }
}
