//! Table I: qualitative properties of the NVMM systems.
//!
//! The durability-related columns are *measured* from the running
//! implementations (`synchronous_durability` / `durable_linearizability`
//! report what the code actually enforces, and the integration tests verify
//! them under crash injection); the architectural columns restate the design
//! facts of each implementation.

use nvcache_bench::{print_table, Row, SystemKind, SystemSpec};
use simclock::ActorClock;

fn main() {
    println!("Table I — properties of the evaluated systems");
    let clock = ActorClock::new();
    let mut rows = Vec::new();
    for kind in SystemKind::all() {
        let sys = nvcache_bench::build_system(&SystemSpec::new(kind, 512), &clock);
        let large_storage =
            matches!(kind, SystemKind::NvcacheSsd | SystemKind::DmWritecacheSsd | SystemKind::Ssd);
        let stock_kernel = !matches!(kind, SystemKind::Nova | SystemKind::NvcacheNova);
        let reuse_legacy_fs =
            !matches!(kind, SystemKind::Nova | SystemKind::NvcacheNova | SystemKind::Tmpfs);
        rows.push(Row::new(
            sys.name,
            vec![
                yn(large_storage),
                yn(sys.fs.synchronous_durability()),
                yn(sys.fs.durable_linearizability()),
                yn(reuse_legacy_fs),
                yn(stock_kernel),
            ],
        ));
        sys.shutdown(&clock);
    }
    print_table(
        "Table I",
        &[
            "large storage",
            "sync durability",
            "durable linearizability",
            "legacy FS",
            "stock kernel",
        ],
        &rows,
    );
    println!(
        "\n(sync-durability / durable-linearizability columns are live values reported\n by the implementations and exercised by the crash-injection test suite)"
    );
}

fn yn(b: bool) -> String {
    (if b { "+" } else { "-" }).to_string()
}
