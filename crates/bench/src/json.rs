//! A minimal hand-rolled JSON emitter for the machine-readable benchmark
//! snapshots (`BENCH_*.json`). The workspace is offline and vendors no
//! serde, so the figure binaries build their documents from this value
//! tree and render them deterministically (object keys keep insertion
//! order, floats use shortest-roundtrip formatting).

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any integer (emitted without a fraction).
    Int(i64),
    /// A float; non-finite values render as `null` per RFC 8259.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Parses a JSON document (RFC 8259 subset: no `\uXXXX` surrogate
    /// pairs beyond the BMP). The inverse of [`Json::render`] — used by
    /// `benchcheck` to validate committed `BENCH_*.json` snapshots.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message with the byte offset of the first
    /// syntax error, or on trailing garbage after the top-level value.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Looks up a key in an object value; `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Renders the tree as pretty-printed JSON (two-space indent, trailing
    /// newline) ready to be written to a `BENCH_*.json` file.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

/// Recursive-descent parser over the input bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "surrogate \\u escape".to_string())?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str and the
                    // cursor only ever lands on scalar boundaries).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        let mut float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number at byte {start}"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| format!("bad number at byte {start}"))
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::obj([
            ("name", Json::str("fig5")),
            ("scale", Json::Int(64)),
            ("ok", Json::Bool(true)),
            ("rows", Json::Arr(vec![Json::Num(1.5), Json::Null])),
            ("empty", Json::obj([])),
        ]);
        let text = doc.render();
        assert!(text.starts_with("{\n  \"name\": \"fig5\","));
        assert!(text.contains("\"rows\": [\n    1.5,\n    null\n  ]"));
        assert!(text.contains("\"empty\": {}"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let s = Json::str("a\"b\\c\nd\u{1}").render();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn parse_roundtrips_rendered_documents() {
        let doc = Json::obj([
            ("name", Json::str("traffic")),
            ("scale", Json::Int(-3)),
            ("ok", Json::Bool(false)),
            ("rate", Json::Num(1.25)),
            ("nothing", Json::Null),
            ("rows", Json::Arr(vec![Json::Int(1), Json::str("a\"b\nc"), Json::obj([])])),
        ]);
        let text = doc.render();
        let parsed = Json::parse(&text).expect("round-trip parse");
        assert_eq!(parsed.render(), text);
        assert!(matches!(parsed.get("name"), Some(Json::Str(s)) if s == "traffic"));
        assert!(matches!(parsed.get("rate"), Some(Json::Num(f)) if *f == 1.25));
        assert!(parsed.get("missing").is_none());
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "{\"a\": 1} x", "\"unterminated", "tru"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parse_handles_unicode_and_escapes() {
        let v = Json::parse("\"caf\\u00e9 → δ\"").expect("unicode");
        assert!(matches!(v, Json::Str(s) if s == "café → δ"));
    }
}
