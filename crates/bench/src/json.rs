//! A minimal hand-rolled JSON emitter for the machine-readable benchmark
//! snapshots (`BENCH_*.json`). The workspace is offline and vendors no
//! serde, so the figure binaries build their documents from this value
//! tree and render them deterministically (object keys keep insertion
//! order, floats use shortest-roundtrip formatting).

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any integer (emitted without a fraction).
    Int(i64),
    /// A float; non-finite values render as `null` per RFC 8259.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Renders the tree as pretty-printed JSON (two-space indent, trailing
    /// newline) ready to be written to a `BENCH_*.json` file.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::obj([
            ("name", Json::str("fig5")),
            ("scale", Json::Int(64)),
            ("ok", Json::Bool(true)),
            ("rows", Json::Arr(vec![Json::Num(1.5), Json::Null])),
            ("empty", Json::obj([])),
        ]);
        let text = doc.render();
        assert!(text.starts_with("{\n  \"name\": \"fig5\","));
        assert!(text.contains("\"rows\": [\n    1.5,\n    null\n  ]"));
        assert!(text.contains("\"empty\": {}"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let s = Json::str("a\"b\\c\nd\u{1}").render();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }
}
