//! Plain-text table/series rendering for the figure binaries, plus the
//! shared latency-percentile helper every distribution-reporting binary
//! (`fig5 --json`, `sqsweep`, `traffic`) goes through.

pub use fiosim::LatencyHistogram;
use simclock::SimTime;

/// The three tail percentiles the perf snapshots report, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PercentilesUs {
    /// Median.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
}

impl PercentilesUs {
    /// Reads p50/p99/p999 out of a histogram.
    pub fn of(hist: &LatencyHistogram) -> PercentilesUs {
        PercentilesUs {
            p50: hist.p50().as_micros_f64(),
            p99: hist.p99().as_micros_f64(),
            p999: hist.p999().as_micros_f64(),
        }
    }
}

/// Builds a [`LatencyHistogram`] from raw latency samples (order
/// irrelevant).
pub fn latency_histogram(samples: &[SimTime]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

/// p50/p99/p999 (µs) of a raw sample set — the one percentile path shared
/// by `fig5 --json` (via [`fiosim::JobResult`]), `sqsweep` and the traffic
/// engine, all interpolating on the same merged log-scale histogram.
pub fn percentiles_us(samples: &[SimTime]) -> PercentilesUs {
    PercentilesUs::of(&latency_histogram(samples))
}

/// One row of a printed table: a label plus one cell per column.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (left column).
    pub label: String,
    /// Cell values.
    pub cells: Vec<String>,
}

impl Row {
    /// Builds a row from displayable cells.
    pub fn new(label: impl Into<String>, cells: Vec<String>) -> Row {
        Row { label: label.into(), cells }
    }
}

/// Prints an aligned table with a title and column headers.
pub fn print_table(title: &str, columns: &[&str], rows: &[Row]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = columns.iter().map(|c| c.len()).collect();
    let label_w = rows.iter().map(|r| r.label.len()).max().unwrap_or(6).max(6);
    for row in rows {
        for (i, cell) in row.cells.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    print!("{:label_w$}", "");
    for (c, w) in columns.iter().zip(&widths) {
        print!("  {c:>w$}");
    }
    println!();
    for row in rows {
        print!("{:label_w$}", row.label);
        for (cell, w) in row.cells.iter().zip(&widths) {
            print!("  {cell:>w$}");
        }
        println!();
    }
}

/// Prints a (time, value) series as CSV, with both raw virtual seconds and
/// paper-equivalent seconds (`raw * scale`).
pub fn print_series(name: &str, unit: &str, scale: u64, series: &[(SimTime, f64)]) {
    println!("\n# series: {name} [{unit}] (scale 1/{scale})");
    println!("raw_s,paper_equiv_s,{unit}");
    for (t, v) in series {
        let raw = t.as_secs_f64();
        println!("{:.3},{:.1},{:.2}", raw, raw * scale as f64, v);
    }
}

/// Formats a latency in microseconds with sensible precision.
pub fn us(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_render_without_panicking() {
        let rows =
            vec![Row::new("a", vec!["1".into(), "2".into()]), Row::new("bbbb", vec!["3".into()])];
        print_table("test", &["x", "y"], &rows);
        print_series("s", "MiB/s", 64, &[(SimTime::from_secs(1), 42.0)]);
    }

    #[test]
    fn us_formatting() {
        assert_eq!(us(3.15159), "3.2");
        assert_eq!(us(250.7), "251");
    }

    #[test]
    fn shared_percentiles_are_ordered() {
        let samples: Vec<SimTime> = (1..=200).map(SimTime::from_micros).collect();
        let p = percentiles_us(&samples);
        assert!(p.p50 < p.p99 && p.p99 <= p.p999, "{p:?}");
        assert!((p.p50 - 100.0).abs() / 100.0 < 0.1, "median ≈ 100 µs, got {}", p.p50);
    }

    #[test]
    fn empty_sample_set_is_all_zero() {
        let p = percentiles_us(&[]);
        assert_eq!((p.p50, p.p99, p.p999), (0.0, 0.0, 0.0));
    }
}
