//! Plain-text table/series rendering for the figure binaries.

use simclock::SimTime;

/// One row of a printed table: a label plus one cell per column.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (left column).
    pub label: String,
    /// Cell values.
    pub cells: Vec<String>,
}

impl Row {
    /// Builds a row from displayable cells.
    pub fn new(label: impl Into<String>, cells: Vec<String>) -> Row {
        Row { label: label.into(), cells }
    }
}

/// Prints an aligned table with a title and column headers.
pub fn print_table(title: &str, columns: &[&str], rows: &[Row]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = columns.iter().map(|c| c.len()).collect();
    let label_w = rows.iter().map(|r| r.label.len()).max().unwrap_or(6).max(6);
    for row in rows {
        for (i, cell) in row.cells.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    print!("{:label_w$}", "");
    for (c, w) in columns.iter().zip(&widths) {
        print!("  {c:>w$}");
    }
    println!();
    for row in rows {
        print!("{:label_w$}", row.label);
        for (cell, w) in row.cells.iter().zip(&widths) {
            print!("  {cell:>w$}");
        }
        println!();
    }
}

/// Prints a (time, value) series as CSV, with both raw virtual seconds and
/// paper-equivalent seconds (`raw * scale`).
pub fn print_series(name: &str, unit: &str, scale: u64, series: &[(SimTime, f64)]) {
    println!("\n# series: {name} [{unit}] (scale 1/{scale})");
    println!("raw_s,paper_equiv_s,{unit}");
    for (t, v) in series {
        let raw = t.as_secs_f64();
        println!("{:.3},{:.1},{:.2}", raw, raw * scale as f64, v);
    }
}

/// Formats a latency in microseconds with sensible precision.
pub fn us(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_render_without_panicking() {
        let rows =
            vec![Row::new("a", vec!["1".into(), "2".into()]), Row::new("bbbb", vec!["3".into()])];
        print_table("test", &["x", "y"], &rows);
        print_series("s", "MiB/s", 64, &[(SimTime::from_secs(1), 42.0)]);
    }

    #[test]
    fn us_formatting() {
        assert_eq!(us(3.15159), "3.2");
        assert_eq!(us(250.7), "251");
    }
}
