//! Benchmark harness for the NVCache reproduction.
//!
//! One binary per table/figure of the paper (see DESIGN.md §6):
//!
//! | target | regenerates |
//! |--------|-------------|
//! | `table1` | Table I (system property matrix) |
//! | `table4` | Table IV (evaluated configurations) |
//! | `fig3`   | Fig. 3 (db_bench latencies, RocksDB + SQLite stand-ins) |
//! | `fig4`   | Fig. 4 (FIO randwrite time series, 5 systems) |
//! | `fig5`   | Fig. 5 (NVMM log-size saturation) |
//! | `fig6`   | Fig. 6 (cleanup batching sweep) |
//! | `fig7`   | Fig. 7 (read-cache size sweep) |
//!
//! Capacity-bound experiments run at a configurable `--scale N` (default 64,
//! see DESIGN.md §3): all capacities and dataset sizes divide by N, so the
//! virtual-time axis compresses by ≈N while per-operation latencies stay at
//! paper scale. Each binary prints both raw virtual seconds and
//! "paper-equivalent" seconds (`raw × N`).

pub mod cli;
pub mod json;
pub mod report;
pub mod systems;

pub use cli::CommonArgs;
pub use json::Json;
pub use report::{
    latency_histogram, percentiles_us, print_series, print_table, LatencyHistogram, PercentilesUs,
    Row,
};
pub use systems::{build_system, System, SystemKind, SystemSpec};

/// Parses `--key value` style arguments with a default.
pub fn arg_u64(key: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Whether a bare flag is present.
pub fn arg_flag(key: &str) -> bool {
    std::env::args().any(|a| a == key)
}

/// Parses a `--key value` string argument, `None` when absent.
pub fn arg_str(key: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1)).cloned()
}

#[cfg(test)]
mod tests {
    #[test]
    fn arg_parsing_defaults() {
        assert_eq!(super::arg_u64("--definitely-not-passed", 7), 7);
        assert!(!super::arg_flag("--definitely-not-passed"));
    }
}
