//! Shared command-line parsing for the figure binaries.
//!
//! Every capacity-bound experiment takes the same three stack knobs —
//! `--scale` (capacity divisor, DESIGN.md §3), `--shards` (log stripes) and
//! `--queue-depth` (submission-ring/SSD-channel depth) — which used to be
//! copy-pasted into each binary. [`CommonArgs`] parses them once and stamps
//! them onto a [`SystemSpec`], which the systems module turns into an
//! `NvCacheBuilder` mount.

use crate::{arg_u64, SystemKind, SystemSpec};

/// The stack knobs shared by every figure binary.
#[derive(Debug, Clone, Copy)]
pub struct CommonArgs {
    /// Scale divisor applied to the paper's capacities (`--scale`, default
    /// 64).
    pub scale: u64,
    /// NVCache log stripes (`--shards`, default 1 = the paper's single
    /// log).
    pub shards: usize,
    /// I/O queue depth (`--queue-depth`, default 1 = the paper's
    /// synchronous model).
    pub queue_depth: usize,
}

impl CommonArgs {
    /// Parses `--scale N`, `--shards S` and `--queue-depth Q` from the
    /// process arguments, with the paper-reproducing defaults.
    pub fn parse() -> CommonArgs {
        CommonArgs {
            scale: arg_u64("--scale", 64),
            shards: arg_u64("--shards", 1).max(1) as usize,
            queue_depth: arg_u64("--queue-depth", 1).max(1) as usize,
        }
    }

    /// A [`SystemSpec`] for `kind` carrying these knobs.
    pub fn spec(&self, kind: SystemKind) -> SystemSpec {
        SystemSpec::new(kind, self.scale)
            .with_log_shards(self.shards)
            .with_queue_depth(self.queue_depth)
    }

    /// The standard suffix describing these knobs in a figure's headline.
    pub fn describe(&self) -> String {
        format!(
            "scale 1/{}, {} log shard(s), queue depth {}",
            self.scale, self.shards, self.queue_depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_reproduce_the_paper() {
        let args = CommonArgs::parse();
        assert_eq!(args.shards, 1);
        assert_eq!(args.queue_depth, 1);
        let spec = args.spec(SystemKind::NvcacheSsd);
        assert_eq!(spec.log_shards, 1);
        assert_eq!(spec.queue_depth, 1);
        assert_eq!(spec.scale, args.scale);
        assert!(args.describe().contains("1 log shard(s)"));
    }
}
