//! Tenant descriptions: what workload a tenant runs (raw FS, rocklet,
//! sqlight), under which path prefix, with which mix/skew/arrival model.

use crate::gen::{Arrival, OpMix, SizeDist};

/// Which engine a tenant drives against the shared mount.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantKind {
    /// Raw pread/pwrite/fsync over a set of preallocated files.
    RawFs {
        /// Number of files under the tenant prefix.
        files: u64,
        /// Size of each file, bytes.
        file_size: u64,
    },
    /// LSM key-value store ([`rocklet`]) under `{prefix}/rock`.
    Rocklet {
        /// Number of prefilled keys; reads and overwrites hit these.
        keys: u64,
    },
    /// B-tree embedded SQL store ([`sqlight`]) at `{prefix}/sql.db`.
    Sqlight {
        /// Number of prefilled rows; reads hit these, writes insert fresh
        /// rowids after them.
        rows: u64,
    },
}

/// Full description of one tenant's workload. Together with a seed this
/// deterministically defines the tenant's trace
/// ([`TenantTrace::generate`](crate::TenantTrace::generate)).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Display name (also used to derive the tenant's sub-seed).
    pub name: String,
    /// Path prefix on the shared mount; every file the tenant touches
    /// lives under it, so per-prefix tiering/placement policies engage.
    pub prefix: String,
    /// Which engine the tenant drives.
    pub kind: TenantKind,
    /// Read/write/fsync mix.
    pub mix: OpMix,
    /// Closed-loop or open-loop (optionally bursty) arrivals.
    pub arrival: Arrival,
    /// Zipfian skew of object popularity, in `[0, 1)`.
    pub theta: f64,
    /// Number of operations to generate.
    pub ops: u64,
    /// Request/value size distribution.
    pub size: SizeDist,
}

impl TenantSpec {
    /// Number of distinct objects the zipfian sampler ranges over.
    pub fn object_count(&self) -> u64 {
        match self.kind {
            TenantKind::RawFs { files, .. } => files.max(1),
            TenantKind::Rocklet { keys } => keys.max(1),
            TenantKind::Sqlight { rows } => rows.max(1),
        }
    }

    /// Stable sub-seed for this tenant under a run seed: tenants must not
    /// share RNG streams, and inserting a tenant must not reshuffle the
    /// others' traces.
    pub fn derive_seed(&self, run_seed: u64) -> u64 {
        // FNV-1a over the name, mixed with the run seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^ run_seed.rotate_left(17)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_seeds_differ_per_tenant_and_run_seed() {
        let mk = |name: &str| TenantSpec {
            name: name.into(),
            prefix: format!("/{name}"),
            kind: TenantKind::Rocklet { keys: 10 },
            mix: OpMix::read_heavy(),
            arrival: Arrival::ClosedLoop { concurrency: 1 },
            theta: 0.5,
            ops: 10,
            size: SizeDist::Fixed(128),
        };
        let (a, b) = (mk("alpha"), mk("beta"));
        assert_ne!(a.derive_seed(1), b.derive_seed(1));
        assert_ne!(a.derive_seed(1), a.derive_seed(2));
        assert_eq!(a.derive_seed(1), a.derive_seed(1));
    }
}
