//! Deterministic multi-tenant traffic engine for the NVCache reproduction.
//!
//! Replays synthetic traces — seeded zipfian popularity, configurable
//! read/write/fsync mixes, open-loop (Poisson, optionally bursty) or
//! closed-loop arrivals — against a single shared mount, with several
//! tenants (raw-FS, [`rocklet`], [`sqlight`]) running concurrently in
//! virtual time, each under its own path prefix so tiering and heat
//! placement engage per tenant.
//!
//! The pipeline is three stages:
//!
//! 1. **Generate** ([`TenantTrace::generate`]): a [`TenantSpec`] plus a
//!    seed deterministically materialises a trace (compare runs with
//!    [`TenantTrace::encode`]).
//! 2. **Replay** ([`engine::run`]): a single-OS-thread discrete-event
//!    scheduler drives per-worker [`simclock::ActorClock`]s; the globally
//!    earliest-ready operation always executes next, so results are exactly
//!    reproducible per seed.
//! 3. **Report** ([`TrafficReport`]): per-tenant mergeable log-scale
//!    latency histograms ([`fiosim::LatencyHistogram`]) with p50/p99/p999,
//!    offered vs achieved rates, and saturation ratios.

pub mod engine;
pub mod gen;
pub mod metrics;
pub mod tenant;

pub use engine::{run, EngineConfig, TrafficError, TrafficResult, TrafficTarget};
pub use gen::{Arrival, Burst, OpKind, OpMix, SizeDist, TenantTrace, TraceOp, ZipfSampler};
pub use metrics::{Tail, TenantMetrics, TenantReport, TrafficReport};
pub use tenant::{TenantKind, TenantSpec};
