//! The replay engine: a single-OS-thread discrete-event scheduler that
//! drives every tenant's workers over per-worker [`ActorClock`]s against one
//! shared mount.
//!
//! Determinism contract: given the same target state, tenant specs and
//! [`EngineConfig`], two runs produce identical virtual-time results — the
//! scheduler always executes the globally earliest-ready operation next and
//! breaks ties by (tenant, worker) index, and any NVCache log drain happens
//! at deterministic op counts ([`EngineConfig::flush_every`]) rather than on
//! a background thread's schedule. Pair it with a parked-cleanup NVCache
//! config (`batch_min`/`batch_max` ≈ `usize::MAX`) for byte-stable runs.

use std::sync::Arc;

use nvcache::NvCache;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rocklet::{RockError, RockletDb, RockletOptions, WriteOptions};
use simclock::{ActorClock, SimTime};
use sqlight::{SqlError, SqlightDb, SqlightOptions};
use vfs::{Fd, FileSystem, IoError, OpenFlags};

use crate::gen::{Arrival, OpKind, TenantTrace, TraceOp};
use crate::metrics::{TenantMetrics, TrafficReport};
use crate::tenant::{TenantKind, TenantSpec};

/// What the engine drives: any [`FileSystem`], plus the NVCache handle when
/// the mount is one (so the engine can drain the log at deterministic
/// points instead of relying on background cleanup).
#[derive(Clone)]
pub struct TrafficTarget {
    /// The shared mount every tenant runs on.
    pub fs: Arc<dyn FileSystem>,
    /// Set when `fs` is an NVCache mount; enables deterministic log drains.
    pub nvcache: Option<Arc<NvCache>>,
}

impl TrafficTarget {
    /// A target over a plain file system.
    pub fn plain(fs: Arc<dyn FileSystem>) -> TrafficTarget {
        TrafficTarget { fs, nvcache: None }
    }

    /// A target over an NVCache mount (registers the handle for drains).
    pub fn nvcache(cache: Arc<NvCache>) -> TrafficTarget {
        TrafficTarget { fs: Arc::clone(&cache) as Arc<dyn FileSystem>, nvcache: Some(cache) }
    }
}

/// Engine knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Run seed; tenant sub-seeds derive from it and the tenant name.
    pub seed: u64,
    /// Drain the NVCache log after every N completed operations
    /// (0 = only once at the end). Deterministic stand-in for background
    /// cleanup when the mount parks its cleanup workers.
    pub flush_every: u64,
    /// Virtual time the run starts at — pass the mount clock's `now()` so
    /// device/resource model state carries over consistently.
    pub start: SimTime,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { seed: 1, flush_every: 0, start: SimTime::ZERO }
    }
}

/// Engine failure: any error surfaced by a tenant backend.
#[derive(Debug)]
pub enum TrafficError {
    /// Raw file-system error.
    Io(IoError),
    /// Rocklet engine error.
    Rock(RockError),
    /// Sqlight engine error.
    Sql(SqlError),
}

impl std::fmt::Display for TrafficError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrafficError::Io(e) => write!(f, "i/o error: {e}"),
            TrafficError::Rock(e) => write!(f, "rocklet error: {e}"),
            TrafficError::Sql(e) => write!(f, "sqlight error: {e}"),
        }
    }
}

impl std::error::Error for TrafficError {}

impl From<IoError> for TrafficError {
    fn from(e: IoError) -> Self {
        TrafficError::Io(e)
    }
}

impl From<RockError> for TrafficError {
    fn from(e: RockError) -> Self {
        TrafficError::Rock(e)
    }
}

impl From<SqlError> for TrafficError {
    fn from(e: SqlError) -> Self {
        TrafficError::Sql(e)
    }
}

/// Result alias for engine entry points.
pub type TrafficResult<T> = Result<T, TrafficError>;

/// Per-tenant runtime state: the materialised trace plus the backend
/// handles the ops execute against.
struct TenantRt {
    trace: TenantTrace,
    backend: Backend,
    metrics: TenantMetrics,
    open_loop: bool,
    durable_writes: bool,
}

enum Backend {
    RawFs { fds: Vec<Fd>, file_size: u64 },
    Rocklet { db: RockletDb },
    Sqlight { db: SqlightDb, rows: u64, next_row: i64 },
}

/// One schedulable worker: a clock plus a cursor into its tenant's trace
/// (worker `w` of `W` owns trace indices `w, w+W, w+2W, ...`).
struct Worker {
    tenant: usize,
    stride: usize,
    cursor: usize,
    clock: ActorClock,
}

impl Worker {
    fn next_op<'t>(&self, tenants: &'t [TenantRt]) -> Option<&'t TraceOp> {
        tenants[self.tenant].trace.ops.get(self.cursor)
    }

    /// Virtual time this worker could execute its next op: its own clock,
    /// or the op's arrival when that is later (open loop).
    fn ready_at(&self, tenants: &[TenantRt], start: SimTime) -> Option<SimTime> {
        let op = self.next_op(tenants)?;
        Some(self.clock.now().max(start + op.arrival))
    }
}

/// Runs every tenant's trace against the target and reports per-tenant
/// latency distributions and achieved rates.
///
/// # Errors
///
/// Any backend error (I/O, rocklet, sqlight) aborts the run.
pub fn run(
    target: &TrafficTarget,
    specs: &[TenantSpec],
    cfg: &EngineConfig,
) -> TrafficResult<TrafficReport> {
    // ---- Setup phase: materialise traces, prefill datasets. ----
    // All setup I/O runs on one clock so it lands at a deterministic
    // virtual time regardless of tenant count or order.
    let setup = ActorClock::starting_at(cfg.start);
    let mut tenants = Vec::with_capacity(specs.len());
    for spec in specs {
        let trace = TenantTrace::generate(spec, spec.derive_seed(cfg.seed));
        let backend = setup_backend(target, spec, cfg, &setup)?;
        // Offered rate of the *materialised* trace (ops over arrival span),
        // not the configured λ: burst gating stretches the span and fsyncs
        // share their write's arrival, so the empirical rate is what
        // achieved throughput should be compared against.
        let offered = spec.arrival.offered_ops_per_sec().map(|configured| {
            let span = trace.ops.last().map_or(SimTime::ZERO, |o| o.arrival);
            if span > SimTime::ZERO {
                trace.ops.len() as f64 / span.as_secs_f64()
            } else {
                configured
            }
        });
        tenants.push(TenantRt {
            trace,
            backend,
            metrics: TenantMetrics::new(&spec.name, SimTime::ZERO, offered),
            open_loop: matches!(spec.arrival, Arrival::OpenLoop { .. }),
            durable_writes: spec.mix.fsync_every > 0,
        });
    }
    if let Some(nc) = &target.nvcache {
        // Start the measured phase from a drained log.
        nc.flush_log(&setup);
    }
    let start = setup.now();
    for t in &mut tenants {
        t.metrics.started = start;
        t.metrics.finished = start;
    }

    // ---- Run phase: single-thread discrete-event loop. ----
    let mut workers = Vec::new();
    for (ti, spec) in specs.iter().enumerate() {
        let n = spec.arrival.workers();
        for w in 0..n {
            workers.push(Worker {
                tenant: ti,
                stride: n,
                cursor: w,
                clock: ActorClock::starting_at(start),
            });
        }
    }

    let max_len = specs.iter().map(|s| s.size.max_bytes()).max().unwrap_or(4096) as usize;
    let write_buf = vec![0x6eu8; max_len];
    let mut done = 0u64;

    loop {
        // Pick the globally earliest-ready worker; ties break by worker
        // index (i.e. (tenant, worker) order), keeping the schedule total.
        let mut best: Option<(SimTime, usize)> = None;
        for (i, w) in workers.iter().enumerate() {
            if let Some(at) = w.ready_at(&tenants, start) {
                if best.is_none_or(|(t, _)| at < t) {
                    best = Some((at, i));
                }
            }
        }
        let Some((ready, wi)) = best else { break };
        let (ti, op) = {
            let w = &workers[wi];
            (w.tenant, *w.next_op(&tenants).expect("ready worker has an op"))
        };
        let clock = &workers[wi].clock;
        if clock.now() < ready {
            clock.advance_to(ready);
        }
        let issue = clock.now();
        execute(target, &tenants[ti], &op, &write_buf, clock)?;
        let completed = clock.now();
        let t = &mut tenants[ti];
        if op.kind != OpKind::Read {
            if let Backend::Sqlight { next_row, .. } = &mut t.backend {
                *next_row += 1;
            }
        }
        let latency = if t.open_loop {
            completed.saturating_sub(start + op.arrival)
        } else {
            completed.saturating_sub(issue)
        };
        t.metrics.record(op.kind, latency, completed);
        workers[wi].cursor += workers[wi].stride;
        done += 1;
        if cfg.flush_every > 0 && done.is_multiple_of(cfg.flush_every) {
            if let Some(nc) = &target.nvcache {
                nc.flush_log(&workers[wi].clock);
            }
        }
    }

    // ---- Teardown: drain on the horizon clock for a stable end state,
    // and close raw-FS fds so the files become migratable (tier rebalance
    // skips open files) and fd slots don't leak across phases. ----
    let final_clock = workers.iter().map(|w| w.clock.now()).max().unwrap_or(start);
    let teardown = ActorClock::starting_at(final_clock);
    if let Some(nc) = &target.nvcache {
        nc.flush_log(&teardown);
    }
    for t in &tenants {
        if let Backend::RawFs { fds, .. } = &t.backend {
            for &fd in fds {
                target.fs.close(fd, &teardown)?;
            }
        }
    }
    Ok(TrafficReport {
        tenants: tenants.iter().map(|t| t.metrics.report()).collect(),
        started: start,
        final_clock,
    })
}

/// Prefills one tenant's dataset (idempotent: re-running over an existing
/// mount detects and keeps prior state, so multi-phase experiments can
/// reuse a warm mount).
fn setup_backend(
    target: &TrafficTarget,
    spec: &TenantSpec,
    cfg: &EngineConfig,
    clock: &ActorClock,
) -> TrafficResult<Backend> {
    let fs = &target.fs;
    let mut rng = StdRng::seed_from_u64(spec.derive_seed(cfg.seed) ^ 0x5e7);
    match spec.kind {
        TenantKind::RawFs { files, file_size } => {
            let files = files.max(1);
            let file_size = file_size.max(4096);
            let mut fds = Vec::with_capacity(files as usize);
            let chunk = vec![0x42u8; (64usize << 10).min(file_size as usize)];
            for f in 0..files {
                let path = format!("{}/f{f:04}", spec.prefix);
                let already = fs.stat(&path, clock).map(|m| m.size >= file_size).unwrap_or(false);
                let fd = fs.open(&path, OpenFlags::RDWR | OpenFlags::CREATE, clock)?;
                if !already {
                    let mut off = 0u64;
                    while off < file_size {
                        let n = chunk.len().min((file_size - off) as usize);
                        fs.pwrite(fd, &chunk[..n], off, clock)?;
                        off += n as u64;
                    }
                    fs.fsync(fd, clock)?;
                }
                fds.push(fd);
            }
            Ok(Backend::RawFs { fds, file_size })
        }
        TenantKind::Rocklet { keys } => {
            let db = RockletDb::open(
                Arc::clone(fs),
                &format!("{}/rock", spec.prefix),
                RockletOptions::tiny(),
                clock,
            )?;
            let wo = WriteOptions { sync: false };
            for k in 0..keys.max(1) {
                let key = rocklet_key(k);
                if db.get(&key, clock)?.is_none() {
                    db.put(&key, &value_for(spec.size.sample(&mut rng)), &wo, clock)?;
                }
            }
            Ok(Backend::Rocklet { db })
        }
        TenantKind::Sqlight { rows } => {
            let rows = rows.max(1);
            let db = SqlightDb::open(
                Arc::clone(fs),
                &format!("{}/sql.db", spec.prefix),
                SqlightOptions::default(),
                clock,
            )?;
            if !db.tables().iter().any(|t| t == "kv") {
                db.create_table("kv", clock)?;
            }
            for r in 0..rows as i64 {
                match db.insert("kv", r, &value_for(spec.size.sample(&mut rng)), clock) {
                    Ok(()) | Err(SqlError::DuplicateRow(_)) => {}
                    Err(e) => return Err(e.into()),
                }
            }
            // A warm mount may already hold rows from an earlier phase;
            // fresh inserts must start past the highest existing rowid.
            let mut next_row = rows as i64;
            if let Some(max) = db.scan("kv", clock)?.iter().map(|&(id, _)| id).max() {
                next_row = next_row.max(max + 1);
            }
            Ok(Backend::Sqlight { db, rows, next_row })
        }
    }
}

/// Executes one trace op against the tenant backend, charging the worker
/// clock.
fn execute(
    target: &TrafficTarget,
    t: &TenantRt,
    op: &TraceOp,
    write_buf: &[u8],
    clock: &ActorClock,
) -> TrafficResult<()> {
    match &t.backend {
        Backend::RawFs { fds, file_size } => {
            let fd = fds[(op.obj % fds.len() as u64) as usize];
            let len = op.len.clamp(1, *file_size) as usize;
            let off = op.off.min(file_size - len as u64);
            match op.kind {
                OpKind::Read => {
                    let mut buf = vec![0u8; len];
                    target.fs.pread(fd, &mut buf, off, clock)?;
                }
                OpKind::Write => {
                    target.fs.pwrite(fd, &write_buf[..len], off, clock)?;
                }
                OpKind::Fsync => {
                    target.fs.fsync(fd, clock)?;
                }
            }
        }
        Backend::Rocklet { db } => {
            let key = rocklet_key(op.obj);
            match op.kind {
                OpKind::Read => {
                    db.get(&key, clock)?;
                }
                OpKind::Write | OpKind::Fsync => {
                    let len = (op.len.max(1) as usize).min(write_buf.len());
                    let wo = WriteOptions { sync: t.durable_writes };
                    db.put(&key, &write_buf[..len], &wo, clock)?;
                }
            }
        }
        Backend::Sqlight { db, rows, next_row } => match op.kind {
            OpKind::Read => {
                db.get("kv", (op.obj % rows) as i64, clock)?;
            }
            OpKind::Write | OpKind::Fsync => {
                let len = (op.len.max(1) as usize).min(write_buf.len());
                match db.insert("kv", *next_row, &write_buf[..len], clock) {
                    Ok(()) | Err(SqlError::DuplicateRow(_)) => {}
                    Err(e) => return Err(e.into()),
                }
            }
        },
    }
    Ok(())
}

/// Fixed-width key encoding so rocklet keys sort by rank.
fn rocklet_key(obj: u64) -> Vec<u8> {
    format!("user{obj:016}").into_bytes()
}

/// Deterministic value payload of the sampled size.
fn value_for(len: u64) -> Vec<u8> {
    vec![0x76u8; len.max(1) as usize]
}
