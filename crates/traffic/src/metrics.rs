//! Per-tenant latency/throughput accounting over mergeable log-scale
//! histograms ([`fiosim::LatencyHistogram`]).

use fiosim::{JobResult, LatencyHistogram};
use simclock::SimTime;

use crate::gen::OpKind;

/// The three tail points every traffic report carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tail {
    /// Median latency.
    pub p50: SimTime,
    /// 99th-percentile latency.
    pub p99: SimTime,
    /// 99.9th-percentile latency.
    pub p999: SimTime,
}

impl Tail {
    /// Reads the three percentiles out of a histogram.
    pub fn of(hist: &LatencyHistogram) -> Tail {
        Tail { p50: hist.p50(), p99: hist.p99(), p999: hist.p999() }
    }
}

/// Mutable per-tenant accounting while a run is in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantMetrics {
    /// Tenant display name.
    pub name: String,
    /// All operations, merged.
    pub all: LatencyHistogram,
    /// Read latencies.
    pub reads: LatencyHistogram,
    /// Write latencies.
    pub writes: LatencyHistogram,
    /// Explicit fsync latencies (raw-FS tenants).
    pub fsyncs: LatencyHistogram,
    /// Virtual time the tenant's first worker started.
    pub started: SimTime,
    /// Virtual time the tenant's last operation completed.
    pub finished: SimTime,
    /// Offered rate of the materialised trace, ops/s (open-loop tenants).
    pub offered_ops_per_sec: Option<f64>,
}

impl TenantMetrics {
    /// Fresh, empty accounting for a tenant starting at `started`.
    pub fn new(name: &str, started: SimTime, offered_ops_per_sec: Option<f64>) -> TenantMetrics {
        TenantMetrics {
            name: name.to_string(),
            all: LatencyHistogram::new(),
            reads: LatencyHistogram::new(),
            writes: LatencyHistogram::new(),
            fsyncs: LatencyHistogram::new(),
            started,
            finished: started,
            offered_ops_per_sec,
        }
    }

    /// Records one completed operation.
    pub fn record(&mut self, kind: OpKind, latency: SimTime, completed_at: SimTime) {
        self.all.record(latency);
        match kind {
            OpKind::Read => self.reads.record(latency),
            OpKind::Write => self.writes.record(latency),
            OpKind::Fsync => self.fsyncs.record(latency),
        }
        self.finished = self.finished.max(completed_at);
    }

    /// Folds a whole [`fiosim::JobResult`] into this tenant's distribution —
    /// the bridge for tenants (or warmup phases) driven through `run_job`
    /// instead of op-by-op through the engine. The job's merged histogram
    /// lands in `all`; reads/writes stay per-op-class only for engine-driven
    /// ops (fio jobs interleave classes in one stream).
    pub fn absorb_job_result(&mut self, result: &JobResult) {
        self.all.merge(&result.latency_hist);
        self.finished = self.finished.max(self.started + result.elapsed);
    }

    /// Operations recorded so far.
    pub fn ops(&self) -> u64 {
        self.all.count()
    }

    /// Wall (virtual) time from start to last completion.
    pub fn elapsed(&self) -> SimTime {
        self.finished.saturating_sub(self.started)
    }

    /// Achieved throughput, ops per virtual second.
    pub fn achieved_ops_per_sec(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.ops() as f64 / secs
        }
    }

    /// Freezes the accounting into a report.
    pub fn report(&self) -> TenantReport {
        TenantReport {
            name: self.name.clone(),
            ops: self.ops(),
            elapsed: self.elapsed(),
            offered_ops_per_sec: self.offered_ops_per_sec,
            achieved_ops_per_sec: self.achieved_ops_per_sec(),
            all: self.all.clone(),
            reads: self.reads.clone(),
            writes: self.writes.clone(),
            fsyncs: self.fsyncs.clone(),
        }
    }
}

/// Frozen per-tenant results.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Tenant display name.
    pub name: String,
    /// Operations completed.
    pub ops: u64,
    /// Virtual time from tenant start to last completion.
    pub elapsed: SimTime,
    /// Offered rate of the materialised trace (open loop), ops/s.
    pub offered_ops_per_sec: Option<f64>,
    /// Achieved rate, ops/s.
    pub achieved_ops_per_sec: f64,
    /// All-op latency distribution.
    pub all: LatencyHistogram,
    /// Read latency distribution.
    pub reads: LatencyHistogram,
    /// Write latency distribution.
    pub writes: LatencyHistogram,
    /// Fsync latency distribution.
    pub fsyncs: LatencyHistogram,
}

impl TenantReport {
    /// p50/p99/p999 over all operations.
    pub fn tail(&self) -> Tail {
        Tail::of(&self.all)
    }

    /// Fraction of the offered rate actually achieved (1.0 when the tenant
    /// is closed-loop or keeping up; < 1 when saturated).
    pub fn saturation_ratio(&self) -> f64 {
        match self.offered_ops_per_sec {
            Some(offered) if offered > 0.0 => self.achieved_ops_per_sec / offered,
            _ => 1.0,
        }
    }
}

/// Whole-run results: per-tenant reports plus the merged clock horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficReport {
    /// One report per tenant, in spec order.
    pub tenants: Vec<TenantReport>,
    /// Virtual time the run started (post-setup).
    pub started: SimTime,
    /// Highest virtual time any worker reached.
    pub final_clock: SimTime,
}

impl TrafficReport {
    /// Run duration in virtual time.
    pub fn elapsed(&self) -> SimTime {
        self.final_clock.saturating_sub(self.started)
    }

    /// Merged all-tenant latency distribution.
    pub fn merged(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for t in &self.tenants {
            h.merge(&t.all);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_routes_by_kind_and_tracks_horizon() {
        let mut m = TenantMetrics::new("t", SimTime::from_secs(1), Some(100.0));
        m.record(OpKind::Read, SimTime::from_micros(10), SimTime::from_secs(2));
        m.record(OpKind::Write, SimTime::from_micros(20), SimTime::from_secs(3));
        m.record(OpKind::Fsync, SimTime::from_micros(30), SimTime::from_secs(4));
        assert_eq!(m.ops(), 3);
        assert_eq!((m.reads.count(), m.writes.count(), m.fsyncs.count()), (1, 1, 1));
        assert_eq!(m.elapsed(), SimTime::from_secs(3));
        let r = m.report();
        assert!((r.achieved_ops_per_sec - 1.0).abs() < 1e-9);
        assert!(r.tail().p50 <= r.tail().p999);
    }

    #[test]
    fn absorb_job_result_merges_histogram() {
        let mut h = LatencyHistogram::new();
        h.record(SimTime::from_micros(5));
        h.record(SimTime::from_micros(50));
        let job =
            JobResult { latency_hist: h, elapsed: SimTime::from_secs(2), ..JobResult::default() };
        let mut m = TenantMetrics::new("t", SimTime::ZERO, None);
        m.absorb_job_result(&job);
        assert_eq!(m.ops(), 2);
        assert_eq!(m.elapsed(), SimTime::from_secs(2));
    }

    #[test]
    fn saturation_ratio_reflects_shortfall() {
        let mut m = TenantMetrics::new("t", SimTime::ZERO, Some(200.0));
        for i in 0..100u64 {
            m.record(OpKind::Read, SimTime::from_micros(10), SimTime::from_millis(10 * (i + 1)));
        }
        // 100 ops over 1 virtual second = 100 ops/s achieved vs 200 offered.
        let r = m.report();
        assert!((r.saturation_ratio() - 0.5).abs() < 0.01, "{}", r.saturation_ratio());
    }
}
