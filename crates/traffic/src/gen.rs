//! Synthetic trace generation: seeded zipfian popularity, read/write/fsync
//! mixes, request-size distributions and arrival processes.
//!
//! Everything here is pure computation over a [`rand::rngs::StdRng`]: the
//! same [`TenantSpec`] and seed always produce the same
//! byte sequence from [`TenantTrace::encode`], which is what the
//! seeded-determinism tests compare.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simclock::SimTime;

use crate::tenant::{TenantKind, TenantSpec};

/// YCSB-style zipfian sampler over ranks `0..n` with skew `theta ∈ [0, 1)`.
///
/// Rank 0 is the most popular object; `theta = 0` degenerates to uniform.
/// Uses the Gray et al. rejection-free formula (precomputed `zeta(n)`,
/// `alpha = 1/(1-theta)`, `eta`), as popularised by YCSB's
/// `ZipfianGenerator`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    n: u64,
    theta: f64,
    alpha: f64,
    zeta_n: f64,
    eta: f64,
}

impl ZipfSampler {
    /// Builds a sampler over `0..n`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0` or `theta` is outside `[0, 1)` (the closed-form
    /// inverse only holds for skew below 1).
    pub fn new(n: u64, theta: f64) -> ZipfSampler {
        assert!(n > 0, "zipf over an empty universe");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1), got {theta}");
        let zeta = |n: u64| -> f64 { (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum() };
        let zeta_n = zeta(n);
        let zeta_2 = zeta(2.min(n));
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta_2 / zeta_n);
        ZipfSampler { n, theta, alpha, zeta_n, eta }
    }

    /// Number of distinct ranks.
    pub fn universe(&self) -> u64 {
        self.n
    }

    /// Draws one rank in `0..n` (0 = hottest).
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if self.n >= 2 && uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

/// Request-size distribution (bytes).
#[derive(Debug, Clone, PartialEq)]
pub enum SizeDist {
    /// Every request is exactly this many bytes.
    Fixed(u64),
    /// Uniform over `[min, max]`.
    Uniform {
        /// Smallest request, bytes.
        min: u64,
        /// Largest request, bytes (inclusive).
        max: u64,
    },
    /// Weighted choice among `(bytes, weight)` pairs, e.g. a bimodal
    /// point-lookup/scan mix.
    Choice(Vec<(u64, u32)>),
}

impl SizeDist {
    /// Draws one request size. Never returns 0.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        match self {
            SizeDist::Fixed(n) => (*n).max(1),
            SizeDist::Uniform { min, max } => {
                let (lo, hi) = ((*min).max(1), (*max).max(*min).max(1));
                rng.gen_range(lo..=hi)
            }
            SizeDist::Choice(arms) => {
                let total: u64 = arms.iter().map(|&(_, w)| w as u64).sum();
                assert!(total > 0, "SizeDist::Choice needs a positive total weight");
                let mut pick = rng.gen_range(0..total);
                for &(bytes, w) in arms {
                    if pick < w as u64 {
                        return bytes.max(1);
                    }
                    pick -= w as u64;
                }
                unreachable!("weights exhausted")
            }
        }
    }

    /// Largest size the distribution can produce (for buffer sizing).
    pub fn max_bytes(&self) -> u64 {
        match self {
            SizeDist::Fixed(n) => (*n).max(1),
            SizeDist::Uniform { min, max } => (*max).max(*min).max(1),
            SizeDist::Choice(arms) => arms.iter().map(|&(b, _)| b).max().unwrap_or(1).max(1),
        }
    }
}

/// One operation class in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Point read (pread / get).
    Read,
    /// Write (pwrite / put / insert).
    Write,
    /// Explicit durability barrier (raw-FS tenants only; DB tenants get
    /// durability from synchronous write options instead).
    Fsync,
}

/// Read/write/fsync mix knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// Percentage of operations that are reads (0..=100).
    pub read_pct: u32,
    /// Emit one fsync after every N writes (0 = never). For DB tenants this
    /// instead turns on synchronous/durable writes.
    pub fsync_every: u32,
}

impl OpMix {
    /// A read-heavy mix (95% reads, no explicit fsync).
    pub fn read_heavy() -> OpMix {
        OpMix { read_pct: 95, fsync_every: 0 }
    }

    /// A write-heavy durable mix (10% reads, fsync after every write).
    pub fn write_heavy_durable() -> OpMix {
        OpMix { read_pct: 10, fsync_every: 1 }
    }
}

/// On/off burst phases for an open-loop arrival process: arrivals are only
/// generated during `on` windows; the gaps between windows last `off`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Burst {
    /// Length of each on-phase.
    pub on: SimTime,
    /// Quiet gap between on-phases.
    pub off: SimTime,
}

/// How a tenant offers load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// Fixed-concurrency closed loop: each of `concurrency` workers issues
    /// its next op as soon as the previous one completes. Offered rate is
    /// whatever the system sustains.
    ClosedLoop {
        /// Number of concurrent workers.
        concurrency: usize,
    },
    /// Open loop: arrivals follow a Poisson process at `rate_ops_per_sec`,
    /// optionally gated into bursty on/off phases; `workers` service them.
    /// Latency counts queueing delay from the *arrival* timestamp.
    OpenLoop {
        /// Mean offered rate during on-phases, operations per second.
        rate_ops_per_sec: f64,
        /// Number of concurrent service workers.
        workers: usize,
        /// Optional on/off burst gating.
        burst: Option<Burst>,
    },
}

impl Arrival {
    /// Number of engine workers this arrival model needs.
    pub fn workers(&self) -> usize {
        match *self {
            Arrival::ClosedLoop { concurrency } => concurrency.max(1),
            Arrival::OpenLoop { workers, .. } => workers.max(1),
        }
    }

    /// The configured offered rate, when the model has one (open loop).
    pub fn offered_ops_per_sec(&self) -> Option<f64> {
        match *self {
            Arrival::ClosedLoop { .. } => None,
            Arrival::OpenLoop { rate_ops_per_sec, .. } => Some(rate_ops_per_sec),
        }
    }
}

/// One generated operation. `arrival` is relative to the run start
/// (always zero for closed-loop tenants: issue as soon as a worker frees).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// Arrival offset from run start (open loop) or zero (closed loop).
    pub arrival: SimTime,
    /// Operation class.
    pub kind: OpKind,
    /// Object rank: file index (raw FS) or key/row index (DB tenants).
    pub obj: u64,
    /// Byte offset within the object (raw FS only, 512-aligned).
    pub off: u64,
    /// Request length in bytes (read/write), 0 for fsync.
    pub len: u64,
}

impl TraceOp {
    /// Serialises the op to a fixed 33-byte little-endian record, for
    /// byte-exact trace comparison in determinism tests.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.arrival.as_nanos().to_le_bytes());
        out.push(match self.kind {
            OpKind::Read => 0,
            OpKind::Write => 1,
            OpKind::Fsync => 2,
        });
        out.extend_from_slice(&self.obj.to_le_bytes());
        out.extend_from_slice(&self.off.to_le_bytes());
        out.extend_from_slice(&self.len.to_le_bytes());
    }
}

/// A fully materialised per-tenant trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantTrace {
    /// Operations in arrival order.
    pub ops: Vec<TraceOp>,
}

impl TenantTrace {
    /// Generates the trace for `spec` from `seed`. Deterministic: equal
    /// `(spec, seed)` always yields an identical trace.
    pub fn generate(spec: &TenantSpec, seed: u64) -> TenantTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        let zipf = ZipfSampler::new(spec.object_count(), spec.theta);
        let explicit_fsync =
            matches!(spec.kind, TenantKind::RawFs { .. }) && spec.mix.fsync_every > 0;
        let file_size = match spec.kind {
            TenantKind::RawFs { file_size, .. } => file_size,
            _ => 0,
        };

        let mut ops = Vec::with_capacity(spec.ops as usize);
        let mut next_arrival = SimTime::ZERO;
        let mut writes_since_fsync = 0u32;
        while (ops.len() as u64) < spec.ops {
            let arrival = match spec.arrival {
                Arrival::ClosedLoop { .. } => SimTime::ZERO,
                Arrival::OpenLoop { rate_ops_per_sec, burst, .. } => {
                    let u: f64 = rng.gen();
                    let gap = -(1.0 - u).ln() / rate_ops_per_sec.max(1e-9);
                    next_arrival = SimTime::from_nanos(
                        next_arrival.as_nanos() + SimTime::from_secs_f64(gap).as_nanos().max(1),
                    );
                    if let Some(Burst { on, off }) = burst {
                        // Skip arrivals that land in an off-phase to the
                        // start of the next on-phase.
                        let period = on.as_nanos().max(1) + off.as_nanos();
                        let pos = next_arrival.as_nanos() % period;
                        if pos >= on.as_nanos() {
                            next_arrival =
                                SimTime::from_nanos(next_arrival.as_nanos() - pos + period);
                        }
                    }
                    next_arrival
                }
            };
            let is_read = rng.gen_range(0u32..100) < spec.mix.read_pct;
            let obj = zipf.sample(&mut rng);
            let len = spec.size.sample(&mut rng);
            let (off, len) = if file_size > 0 {
                let len = len.min(file_size);
                let span = (file_size - len) / 512;
                (rng.gen_range(0..=span) * 512, len)
            } else {
                (0, len)
            };
            let kind = if is_read { OpKind::Read } else { OpKind::Write };
            ops.push(TraceOp { arrival, kind, obj, off, len });
            if !is_read && explicit_fsync {
                writes_since_fsync += 1;
                if writes_since_fsync >= spec.mix.fsync_every && (ops.len() as u64) < spec.ops {
                    writes_since_fsync = 0;
                    ops.push(TraceOp { arrival, kind: OpKind::Fsync, obj, off: 0, len: 0 });
                }
            }
        }
        TenantTrace { ops }
    }

    /// Serialises the whole trace for byte-exact comparison.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.ops.len() * 33);
        for op in &self.ops {
            op.encode(&mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::{TenantKind, TenantSpec};

    fn raw_spec(arrival: Arrival) -> TenantSpec {
        TenantSpec {
            name: "t".into(),
            prefix: "/t".into(),
            kind: TenantKind::RawFs { files: 8, file_size: 1 << 20 },
            mix: OpMix { read_pct: 50, fsync_every: 4 },
            arrival,
            theta: 0.9,
            ops: 2_000,
            size: SizeDist::Uniform { min: 512, max: 16 << 10 },
        }
    }

    #[test]
    fn same_seed_same_bytes_different_seed_differs() {
        let spec = raw_spec(Arrival::ClosedLoop { concurrency: 4 });
        let a = TenantTrace::generate(&spec, 7).encode();
        let b = TenantTrace::generate(&spec, 7).encode();
        let c = TenantTrace::generate(&spec, 8).encode();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn open_loop_arrivals_are_monotone_and_positive() {
        let spec =
            raw_spec(Arrival::OpenLoop { rate_ops_per_sec: 10_000.0, workers: 2, burst: None });
        let trace = TenantTrace::generate(&spec, 1);
        let mut last = SimTime::ZERO;
        for op in &trace.ops {
            assert!(op.arrival >= last, "arrivals must be sorted");
            last = op.arrival;
        }
        assert!(last > SimTime::ZERO);
    }

    #[test]
    fn bursty_arrivals_avoid_off_phases() {
        let burst = Burst { on: SimTime::from_millis(10), off: SimTime::from_millis(90) };
        let spec = raw_spec(Arrival::OpenLoop {
            rate_ops_per_sec: 5_000.0,
            workers: 2,
            burst: Some(burst),
        });
        let trace = TenantTrace::generate(&spec, 3);
        let period = burst.on.as_nanos() + burst.off.as_nanos();
        for op in &trace.ops {
            assert!(
                op.arrival.as_nanos() % period < burst.on.as_nanos(),
                "arrival {:?} inside an off-phase",
                op.arrival
            );
        }
    }

    #[test]
    fn fsyncs_only_on_rawfs_and_follow_writes() {
        let spec = raw_spec(Arrival::ClosedLoop { concurrency: 1 });
        let trace = TenantTrace::generate(&spec, 5);
        let fsyncs = trace.ops.iter().filter(|o| o.kind == OpKind::Fsync).count();
        assert!(fsyncs > 0, "raw-FS spec with fsync_every=4 should emit fsyncs");
        let mut db_spec = spec;
        db_spec.kind = TenantKind::Rocklet { keys: 100 };
        let trace = TenantTrace::generate(&db_spec, 5);
        assert!(trace.ops.iter().all(|o| o.kind != OpKind::Fsync));
    }

    #[test]
    fn zipf_rank_frequency_slope_matches_theta() {
        // Sample heavily, fit log(freq) ~ slope * log(rank+1) over the head
        // of the popularity distribution; the slope of a zipfian with skew
        // theta is -theta.
        for &theta in &[0.6, 0.9] {
            let zipf = ZipfSampler::new(1_000, theta);
            let mut rng = StdRng::seed_from_u64(42);
            let mut counts = vec![0u64; 1_000];
            for _ in 0..300_000 {
                counts[zipf.sample(&mut rng) as usize] += 1;
            }
            counts.sort_unstable_by(|a, b| b.cmp(a));
            let pts: Vec<(f64, f64)> = (0..100)
                .filter(|&r| counts[r] > 0)
                .map(|r| (((r + 1) as f64).ln(), (counts[r] as f64).ln()))
                .collect();
            let n = pts.len() as f64;
            let (sx, sy): (f64, f64) = pts.iter().fold((0.0, 0.0), |a, p| (a.0 + p.0, a.1 + p.1));
            let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
            let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
            let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
            assert!(
                (slope + theta).abs() < 0.15,
                "theta {theta}: fitted slope {slope:.3}, want ≈ {:.3}",
                -theta
            );
        }
    }

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let zipf = ZipfSampler::new(100, 0.0);
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = vec![0u64; 100];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*max < 2 * *min, "uniform-ish spread, got min {min} max {max}");
    }

    #[test]
    fn size_dist_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        let u = SizeDist::Uniform { min: 100, max: 200 };
        for _ in 0..1_000 {
            let s = u.sample(&mut rng);
            assert!((100..=200).contains(&s));
        }
        let c = SizeDist::Choice(vec![(512, 9), (1 << 20, 1)]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1_000 {
            seen.insert(c.sample(&mut rng));
        }
        assert_eq!(seen.len(), 2);
        assert_eq!(c.max_bytes(), 1 << 20);
    }
}
