//! Seeded-determinism and end-to-end smoke tests for the traffic engine:
//! two runs with the same seed over identical fresh mounts must produce a
//! byte-identical trace, the same final virtual clock and equal latency
//! distributions.

use std::sync::Arc;

use blockdev::{SsdDevice, SsdProfile};
use nvcache::{NvCache, NvCacheConfig};
use nvmm::{NvDimm, NvRegion, NvmmProfile};
use simclock::{ActorClock, SimTime};
use traffic::{
    Arrival, Burst, EngineConfig, OpMix, SizeDist, TenantKind, TenantSpec, TenantTrace,
    TrafficTarget,
};
use vfs::{Ext4, Ext4Profile, FileSystem, MemFs};

/// A fresh parked-cleanup NVCache over ext4+SSD: background cleanup never
/// fires, so the engine's explicit `flush_log` points fully determine
/// virtual time.
fn fresh_mount() -> (Arc<NvCache>, ActorClock) {
    let clock = ActorClock::new();
    let cfg = NvCacheConfig {
        nb_entries: 8 * 1024,
        batch_min: usize::MAX >> 1,
        batch_max: usize::MAX >> 1,
        fd_slots: 512,
        ..NvCacheConfig::default()
    };
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::optane()));
    let ssd = Arc::new(SsdDevice::new(SsdProfile::s4600().timing_only()));
    let inner: Arc<dyn FileSystem> = Arc::new(Ext4::new("ext4+ssd", ssd, Ext4Profile::default()));
    let cache = NvCache::builder(NvRegion::whole(dimm))
        .backend(inner)
        .config(cfg)
        .mount(&clock)
        .expect("mount");
    (Arc::new(cache), clock)
}

fn mixed_specs() -> Vec<TenantSpec> {
    vec![
        TenantSpec {
            name: "rock-wal".into(),
            prefix: "/rock".into(),
            kind: TenantKind::Rocklet { keys: 64 },
            mix: OpMix { read_pct: 20, fsync_every: 1 },
            arrival: Arrival::ClosedLoop { concurrency: 2 },
            theta: 0.9,
            ops: 150,
            size: SizeDist::Fixed(256),
        },
        TenantSpec {
            name: "sql-txn".into(),
            prefix: "/sql".into(),
            kind: TenantKind::Sqlight { rows: 48 },
            mix: OpMix { read_pct: 60, fsync_every: 1 },
            arrival: Arrival::OpenLoop {
                rate_ops_per_sec: 3_000.0,
                workers: 2,
                burst: Some(Burst { on: SimTime::from_millis(20), off: SimTime::from_millis(20) }),
            },
            theta: 0.7,
            ops: 120,
            size: SizeDist::Uniform { min: 64, max: 512 },
        },
        TenantSpec {
            name: "fs-scan".into(),
            prefix: "/scan".into(),
            kind: TenantKind::RawFs { files: 4, file_size: 256 << 10 },
            mix: OpMix { read_pct: 90, fsync_every: 8 },
            arrival: Arrival::ClosedLoop { concurrency: 2 },
            theta: 0.5,
            ops: 150,
            size: SizeDist::Choice(vec![(4 << 10, 3), (64 << 10, 1)]),
        },
    ]
}

#[test]
fn same_seed_same_trace_same_virtual_time() {
    let specs = mixed_specs();
    let cfg = EngineConfig { seed: 42, flush_every: 64, ..EngineConfig::default() };

    let run_once = || {
        let (cache, clock) = fresh_mount();
        let target = TrafficTarget::nvcache(Arc::clone(&cache));
        let cfg = EngineConfig { start: clock.now(), ..cfg };
        let report = traffic::run(&target, &specs, &cfg).expect("traffic run");
        cache.shutdown(&clock);
        report
    };

    // The generated traces must be byte-identical per seed.
    for spec in &specs {
        let a = TenantTrace::generate(spec, spec.derive_seed(cfg.seed)).encode();
        let b = TenantTrace::generate(spec, spec.derive_seed(cfg.seed)).encode();
        assert_eq!(a, b, "trace generation must be deterministic for {}", spec.name);
        assert!(!a.is_empty());
    }

    let r1 = run_once();
    let r2 = run_once();
    assert_eq!(
        r1.final_clock, r2.final_clock,
        "two runs with the same seed must reach the same final virtual clock"
    );
    assert_eq!(r1.started, r2.started);
    assert_eq!(r1.tenants.len(), r2.tenants.len());
    for (a, b) in r1.tenants.iter().zip(&r2.tenants) {
        assert_eq!(a, b, "tenant {} report must be identical across runs", a.name);
    }

    // And a different seed must actually change the outcome.
    let (cache, clock) = fresh_mount();
    let target = TrafficTarget::nvcache(Arc::clone(&cache));
    let other = EngineConfig { seed: 43, start: clock.now(), ..cfg };
    let r3 = traffic::run(&target, &specs, &other).expect("traffic run");
    cache.shutdown(&clock);
    assert_ne!(r1.final_clock, r3.final_clock, "a different seed should perturb virtual time");
}

#[test]
fn reports_cover_all_tenants_and_ops() {
    let specs = mixed_specs();
    let (cache, clock) = fresh_mount();
    let target = TrafficTarget::nvcache(Arc::clone(&cache));
    let cfg = EngineConfig { seed: 7, flush_every: 32, start: clock.now() };
    let report = traffic::run(&target, &specs, &cfg).expect("traffic run");
    cache.shutdown(&clock);

    assert_eq!(report.tenants.len(), specs.len());
    for (spec, t) in specs.iter().zip(&report.tenants) {
        assert_eq!(t.name, spec.name);
        assert_eq!(t.ops, spec.ops, "tenant {} must complete its whole trace", spec.name);
        let tail = t.tail();
        assert!(tail.p50 <= tail.p99 && tail.p99 <= tail.p999);
        assert!(tail.p999 > simclock::SimTime::ZERO);
        assert!(t.achieved_ops_per_sec > 0.0);
    }
    assert!(report.elapsed() > simclock::SimTime::ZERO);
    assert_eq!(report.merged().count(), specs.iter().map(|s| s.ops).sum::<u64>());
    // Open-loop tenant carries its offered rate; closed-loop ones don't.
    assert!(report.tenants[1].offered_ops_per_sec.is_some());
    assert!(report.tenants[0].offered_ops_per_sec.is_none());
    assert!(report.tenants[1].saturation_ratio() > 0.0);
}

#[test]
fn engine_runs_on_a_plain_memfs_too() {
    let specs = vec![TenantSpec {
        name: "mem".into(),
        prefix: "/m".into(),
        kind: TenantKind::RawFs { files: 2, file_size: 64 << 10 },
        mix: OpMix { read_pct: 50, fsync_every: 0 },
        arrival: Arrival::ClosedLoop { concurrency: 1 },
        theta: 0.0,
        ops: 50,
        size: SizeDist::Fixed(4096),
    }];
    let target = TrafficTarget::plain(Arc::new(MemFs::new()));
    let report = traffic::run(&target, &specs, &EngineConfig::default()).expect("memfs run");
    assert_eq!(report.tenants[0].ops, 50);
}
