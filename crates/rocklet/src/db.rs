use std::collections::BinaryHeap;
use std::sync::Arc;

use parking_lot::Mutex;
use simclock::ActorClock;
use vfs::{FileSystem, OpenFlags};

use crate::memtable::Memtable;
use crate::sstable::{Table, TableBuilder};
use crate::wal::Wal;
use crate::{Record, RockError, RockResult, RockletOptions, WriteOptions};

struct DbState {
    mem: Memtable,
    wal: Wal,
    wal_number: u64,
    /// Level 0: overlapping tables, newest first.
    l0: Vec<Table>,
    /// Level 1: non-overlapping tables sorted by first key.
    l1: Vec<Table>,
    next_file: u64,
    last_seq: u64,
}

/// The LSM engine.
///
/// See the crate docs for the storage layout. All methods take the caller's
/// virtual clock; every byte of I/O goes through the injected
/// [`FileSystem`], which is how the same unmodified "application" runs over
/// Ext4, NOVA, tmpfs or NVCache in the benchmarks — the paper's core
/// legacy-transparency claim.
pub struct RockletDb {
    fs: Arc<dyn FileSystem>,
    dir: String,
    opts: RockletOptions,
    state: Mutex<DbState>,
}

impl std::fmt::Debug for RockletDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("RockletDb")
            .field("dir", &self.dir)
            .field("mem_bytes", &st.mem.approx_bytes())
            .field("l0", &st.l0.len())
            .field("l1", &st.l1.len())
            .finish()
    }
}

impl RockletDb {
    /// Opens (or creates) a database under `dir`, replaying the WAL and the
    /// MANIFEST.
    ///
    /// # Errors
    ///
    /// I/O errors from the file system; [`RockError::Corruption`] on
    /// malformed persistent state.
    pub fn open(
        fs: Arc<dyn FileSystem>,
        dir: &str,
        opts: RockletOptions,
        clock: &ActorClock,
    ) -> RockResult<RockletDb> {
        let dir = vfs::normalize_path(dir);
        let manifest_path = format!("{dir}/MANIFEST");
        let mut l0 = Vec::new();
        let mut l1 = Vec::new();
        let mut next_file = 1u64;
        let mut last_seq = 0u64;
        let mut wal_number = 0u64;
        match fs.open(&manifest_path, OpenFlags::RDONLY, clock) {
            Ok(fd) => {
                let size = fs.fstat(fd, clock)?.size;
                let mut buf = vec![0u8; size as usize];
                fs.pread(fd, &mut buf, 0, clock)?;
                fs.close(fd, clock)?;
                let mut pos = 0usize;
                let rd_u64 = |pos: &mut usize| -> RockResult<u64> {
                    if *pos + 8 > buf.len() {
                        return Err(RockError::Corruption("manifest truncated".into()));
                    }
                    let v = u64::from_le_bytes(buf[*pos..*pos + 8].try_into().expect("8 bytes"));
                    *pos += 8;
                    Ok(v)
                };
                next_file = rd_u64(&mut pos)?;
                last_seq = rd_u64(&mut pos)?;
                wal_number = rd_u64(&mut pos)?;
                let n_l0 = rd_u64(&mut pos)?;
                for _ in 0..n_l0 {
                    let num = rd_u64(&mut pos)?;
                    l0.push(Table::open(Arc::clone(&fs), &table_path(&dir, num), clock)?);
                }
                let n_l1 = rd_u64(&mut pos)?;
                for _ in 0..n_l1 {
                    let num = rd_u64(&mut pos)?;
                    l1.push(Table::open(Arc::clone(&fs), &table_path(&dir, num), clock)?);
                }
            }
            Err(vfs::IoError::NotFound(_)) => {}
            Err(e) => return Err(e.into()),
        }
        // Replay the WAL into a fresh memtable.
        let mut mem = Memtable::new();
        let mut wal_path = wal_path(&dir, wal_number);
        if wal_number > 0 {
            for rec in Wal::replay(&fs, &wal_path, clock)? {
                last_seq = last_seq.max(rec.seq);
                mem.insert(rec.key, rec.value);
            }
        }
        // Start a new WAL generation so a half-written tail never grows.
        wal_number = next_file;
        next_file += 1;
        wal_path = crate::db::wal_path(&dir, wal_number);
        let wal = Wal::create(Arc::clone(&fs), &wal_path, clock)?;
        let db = RockletDb {
            fs,
            dir,
            opts,
            state: Mutex::new(DbState { mem, wal, wal_number, l0, l1, next_file, last_seq }),
        };
        {
            let mut st = db.state.lock();
            db.write_manifest(&mut st, clock)?;
        }
        Ok(db)
    }

    fn write_manifest(&self, st: &mut DbState, clock: &ActorClock) -> RockResult<()> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&st.next_file.to_le_bytes());
        buf.extend_from_slice(&st.last_seq.to_le_bytes());
        buf.extend_from_slice(&st.wal_number.to_le_bytes());
        buf.extend_from_slice(&(st.l0.len() as u64).to_le_bytes());
        for t in &st.l0 {
            buf.extend_from_slice(&file_number(&t.path).to_le_bytes());
        }
        buf.extend_from_slice(&(st.l1.len() as u64).to_le_bytes());
        for t in &st.l1 {
            buf.extend_from_slice(&file_number(&t.path).to_le_bytes());
        }
        let tmp = format!("{}/MANIFEST.tmp", self.dir);
        let fd =
            self.fs
                .open(&tmp, OpenFlags::RDWR | OpenFlags::CREATE | OpenFlags::TRUNC, clock)?;
        self.fs.pwrite(fd, &buf, 0, clock)?;
        self.fs.fsync(fd, clock)?;
        self.fs.close(fd, clock)?;
        self.fs.rename(&tmp, &format!("{}/MANIFEST", self.dir), clock)?;
        Ok(())
    }

    /// Inserts or overwrites a key.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the WAL, flushes or compactions.
    pub fn put(
        &self,
        key: &[u8],
        value: &[u8],
        wo: &WriteOptions,
        clock: &ActorClock,
    ) -> RockResult<()> {
        self.write_internal(key, Some(value), wo, clock)
    }

    /// Deletes a key (writes a tombstone).
    ///
    /// # Errors
    ///
    /// Same as [`put`](RockletDb::put).
    pub fn delete(&self, key: &[u8], wo: &WriteOptions, clock: &ActorClock) -> RockResult<()> {
        self.write_internal(key, None, wo, clock)
    }

    fn write_internal(
        &self,
        key: &[u8],
        value: Option<&[u8]>,
        wo: &WriteOptions,
        clock: &ActorClock,
    ) -> RockResult<()> {
        let mut st = self.state.lock();
        st.last_seq += 1;
        let seq = st.last_seq;
        st.wal.append(seq, key, value, clock)?;
        if wo.sync {
            st.wal.sync(clock)?;
        }
        st.mem.insert(key.to_vec(), value.map(<[u8]>::to_vec));
        if st.mem.approx_bytes() >= self.opts.memtable_bytes {
            self.flush_memtable(&mut st, clock)?;
        }
        Ok(())
    }

    /// Point lookup: memtable, then L0 newest-first, then L1.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from table reads.
    pub fn get(&self, key: &[u8], clock: &ActorClock) -> RockResult<Option<Vec<u8>>> {
        // CPU cost of the engine itself (skiplist probe, bloom hashing);
        // I/O below is charged by the file system.
        clock.advance(simclock::SimTime::from_nanos(400));
        let st = self.state.lock();
        if let Some(v) = st.mem.get(key) {
            return Ok(v.clone());
        }
        for t in &st.l0 {
            if let Some(v) = t.get(key, clock)? {
                return Ok(v);
            }
        }
        let idx = st.l1.partition_point(|t| t.last_key.as_slice() < key);
        if let Some(t) = st.l1.get(idx) {
            if t.first_key.as_slice() <= key {
                if let Some(v) = t.get(key, clock)? {
                    return Ok(v);
                }
            }
        }
        Ok(None)
    }

    /// Full sorted scan with tombstones resolved (newest version wins).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from table reads.
    pub fn scan_all(&self, clock: &ActorClock) -> RockResult<Vec<(Vec<u8>, Vec<u8>)>> {
        clock.advance(simclock::SimTime::from_nanos(400));
        let st = self.state.lock();
        // Sources ordered newest (priority 0) to oldest.
        let mut sources: Vec<Vec<Record>> = Vec::new();
        sources.push(st.mem.iter().map(|(k, v)| (k.clone(), v.clone())).collect());
        for t in &st.l0 {
            sources.push(t.scan(clock)?);
        }
        let mut l1_all = Vec::new();
        for t in &st.l1 {
            l1_all.extend(t.scan(clock)?);
        }
        sources.push(l1_all);
        Ok(merge_sources(sources))
    }

    /// Entries across all levels (diagnostics).
    pub fn level_summary(&self) -> (usize, usize, usize) {
        let st = self.state.lock();
        (st.mem.len(), st.l0.len(), st.l1.len())
    }

    fn flush_memtable(&self, st: &mut DbState, clock: &ActorClock) -> RockResult<()> {
        if st.mem.is_empty() {
            return Ok(());
        }
        let num = st.next_file;
        st.next_file += 1;
        let path = table_path(&self.dir, num);
        let mut builder = TableBuilder::create(
            Arc::clone(&self.fs),
            &path,
            self.opts.block_bytes,
            self.opts.bloom_bits_per_key,
            clock,
        )?;
        for (k, v) in st.mem.iter() {
            builder.add(k, v.as_deref(), clock)?;
        }
        let table = builder.finish(clock)?;
        st.l0.insert(0, table);
        st.mem = Memtable::new();
        // Rotate the WAL: new generation first, manifest records it, then the
        // old log disappears. A crash in between replays a WAL whose content
        // is already in a durable table — idempotent.
        let new_wal_number = st.next_file;
        st.next_file += 1;
        let new_wal =
            Wal::create(Arc::clone(&self.fs), &wal_path(&self.dir, new_wal_number), clock)?;
        let old_wal = std::mem::replace(&mut st.wal, new_wal);
        st.wal_number = new_wal_number;
        self.write_manifest(st, clock)?;
        old_wal.remove(clock)?;
        if st.l0.len() >= self.opts.l0_compaction_trigger {
            self.compact(st, clock)?;
        }
        Ok(())
    }

    /// Merges all of L0 and L1 into a fresh, non-overlapping L1 (size-tiered
    /// full compaction — the pattern that produces the large sequential
    /// background writes of a real LSM).
    fn compact(&self, st: &mut DbState, clock: &ActorClock) -> RockResult<()> {
        let mut sources: Vec<Vec<Record>> = Vec::new();
        for t in &st.l0 {
            sources.push(t.scan(clock)?);
        }
        let mut l1_all = Vec::new();
        for t in &st.l1 {
            l1_all.extend(t.scan(clock)?);
        }
        sources.push(l1_all);
        let merged = merge_sources(sources); // tombstones dropped: bottom level
        let mut new_l1 = Vec::new();
        let mut builder: Option<TableBuilder> = None;
        for (k, v) in &merged {
            if builder.is_none() {
                let num = st.next_file;
                st.next_file += 1;
                builder = Some(TableBuilder::create(
                    Arc::clone(&self.fs),
                    &table_path(&self.dir, num),
                    self.opts.block_bytes,
                    self.opts.bloom_bits_per_key,
                    clock,
                )?);
            }
            let b = builder.as_mut().expect("just created");
            b.add(k, Some(v), clock)?;
            if b.approx_bytes() >= self.opts.target_table_bytes {
                new_l1.push(builder.take().expect("present").finish(clock)?);
            }
        }
        if let Some(b) = builder {
            if b.count() > 0 {
                new_l1.push(b.finish(clock)?);
            }
        }
        let old_l0 = std::mem::take(&mut st.l0);
        let old_l1 = std::mem::replace(&mut st.l1, new_l1);
        self.write_manifest(st, clock)?;
        for t in old_l0.into_iter().chain(old_l1) {
            t.delete(clock)?;
        }
        Ok(())
    }

    /// Flushes the memtable and closes every file (graceful shutdown).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn shutdown(self, clock: &ActorClock) -> RockResult<()> {
        let mut st = self.state.lock();
        if !st.mem.is_empty() {
            self.flush_memtable(&mut st, clock)?;
        }
        let DbState { wal, l0, l1, .. } = {
            // Move tables out for closing.
            let l0 = std::mem::take(&mut st.l0);
            let l1 = std::mem::take(&mut st.l1);
            let wal = std::mem::replace(
                &mut st.wal,
                Wal::create(Arc::clone(&self.fs), &format!("{}/wal-dead", self.dir), clock)?,
            );
            DbState {
                mem: Memtable::new(),
                wal,
                wal_number: st.wal_number,
                l0,
                l1,
                next_file: st.next_file,
                last_seq: st.last_seq,
            }
        };
        for t in l0.into_iter().chain(l1) {
            t.close(clock)?;
        }
        wal.remove(clock)?;
        Ok(())
    }
}

fn table_path(dir: &str, num: u64) -> String {
    format!("{dir}/{num:06}.sst")
}

fn wal_path(dir: &str, num: u64) -> String {
    format!("{dir}/wal-{num:06}.log")
}

fn file_number(path: &str) -> u64 {
    path.rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".sst"))
        .and_then(|n| n.parse().ok())
        .unwrap_or(0)
}

/// K-way merge of sorted sources; earlier sources are newer and win on
/// duplicate keys; tombstones are dropped from the output.
fn merge_sources(sources: Vec<Vec<Record>>) -> Vec<(Vec<u8>, Vec<u8>)> {
    // Max-heap on Reverse ordering: (key asc, priority asc).
    #[derive(PartialEq, Eq)]
    struct Item {
        key: Vec<u8>,
        priority: usize,
        value: Option<Vec<u8>>,
    }
    impl Ord for Item {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reversed for BinaryHeap (min-heap behaviour).
            other.key.cmp(&self.key).then_with(|| other.priority.cmp(&self.priority))
        }
    }
    impl PartialOrd for Item {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    let mut iters: Vec<std::vec::IntoIter<Record>> =
        sources.into_iter().map(Vec::into_iter).collect();
    let mut heap = BinaryHeap::new();
    for (priority, it) in iters.iter_mut().enumerate() {
        if let Some((key, value)) = it.next() {
            heap.push(Item { key, priority, value });
        }
    }
    let mut out: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    let mut last_key: Option<Vec<u8>> = None;
    while let Some(item) = heap.pop() {
        if let Some((key, value)) = iters[item.priority].next() {
            heap.push(Item { key, priority: item.priority, value });
        }
        if last_key.as_deref() == Some(item.key.as_slice()) {
            continue; // older version of a key we already emitted/decided on
        }
        last_key = Some(item.key.clone());
        if let Some(v) = item.value {
            out.push((item.key, v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::MemFs;

    fn open_db() -> (ActorClock, Arc<dyn FileSystem>, RockletDb) {
        let c = ActorClock::new();
        let fs: Arc<dyn FileSystem> = Arc::new(MemFs::new());
        let db = RockletDb::open(Arc::clone(&fs), "/db", RockletOptions::tiny(), &c).unwrap();
        (c, fs, db)
    }

    #[test]
    fn put_get_delete() {
        let (c, _fs, db) = open_db();
        let wo = WriteOptions { sync: true };
        db.put(b"k1", b"v1", &wo, &c).unwrap();
        assert_eq!(db.get(b"k1", &c).unwrap(), Some(b"v1".to_vec()));
        db.delete(b"k1", &wo, &c).unwrap();
        assert_eq!(db.get(b"k1", &c).unwrap(), None);
        assert_eq!(db.get(b"absent", &c).unwrap(), None);
    }

    #[test]
    fn many_writes_trigger_flush_and_compaction() {
        let (c, _fs, db) = open_db();
        let wo = WriteOptions::default();
        for i in 0..2000u64 {
            db.put(&crate::bench_key(i), format!("value-{i}").as_bytes(), &wo, &c).unwrap();
        }
        let (_mem, _l0, l1) = db.level_summary();
        assert!(l1 > 0, "compaction must have produced L1 tables");
        // All data still visible.
        for i in (0..2000u64).step_by(97) {
            assert_eq!(
                db.get(&crate::bench_key(i), &c).unwrap(),
                Some(format!("value-{i}").into_bytes()),
                "key {i}"
            );
        }
    }

    #[test]
    fn overwrites_keep_newest_version() {
        let (c, _fs, db) = open_db();
        let wo = WriteOptions::default();
        for round in 0..5u64 {
            for i in 0..300u64 {
                db.put(&crate::bench_key(i), format!("r{round}-{i}").as_bytes(), &wo, &c)
                    .unwrap();
            }
        }
        for i in (0..300u64).step_by(31) {
            assert_eq!(
                db.get(&crate::bench_key(i), &c).unwrap(),
                Some(format!("r4-{i}").into_bytes())
            );
        }
    }

    #[test]
    fn scan_is_sorted_and_complete() {
        let (c, _fs, db) = open_db();
        let wo = WriteOptions::default();
        for i in (0..500u64).rev() {
            db.put(&crate::bench_key(i), b"x", &wo, &c).unwrap();
        }
        db.delete(&crate::bench_key(250), &wo, &c).unwrap();
        let all = db.scan_all(&c).unwrap();
        assert_eq!(all.len(), 499);
        for w in all.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        assert!(!all.iter().any(|(k, _)| k == &crate::bench_key(250)));
    }

    #[test]
    fn reopen_recovers_from_wal_and_manifest() {
        let c = ActorClock::new();
        let fs: Arc<dyn FileSystem> = Arc::new(MemFs::new());
        {
            let db = RockletDb::open(Arc::clone(&fs), "/db", RockletOptions::tiny(), &c).unwrap();
            let wo = WriteOptions { sync: true };
            for i in 0..800u64 {
                db.put(&crate::bench_key(i), format!("v{i}").as_bytes(), &wo, &c).unwrap();
            }
            // Drop WITHOUT shutdown: the WAL holds the memtable tail.
            drop(db);
        }
        let db = RockletDb::open(Arc::clone(&fs), "/db", RockletOptions::tiny(), &c).unwrap();
        for i in (0..800u64).step_by(61) {
            assert_eq!(
                db.get(&crate::bench_key(i), &c).unwrap(),
                Some(format!("v{i}").into_bytes()),
                "key {i} lost across restart"
            );
        }
    }

    #[test]
    fn shutdown_then_reopen() {
        let c = ActorClock::new();
        let fs: Arc<dyn FileSystem> = Arc::new(MemFs::new());
        let db = RockletDb::open(Arc::clone(&fs), "/db", RockletOptions::tiny(), &c).unwrap();
        db.put(b"persist", b"me", &WriteOptions { sync: true }, &c).unwrap();
        db.shutdown(&c).unwrap();
        let db2 = RockletDb::open(fs, "/db", RockletOptions::tiny(), &c).unwrap();
        assert_eq!(db2.get(b"persist", &c).unwrap(), Some(b"me".to_vec()));
    }

    #[test]
    fn merge_prefers_newest_and_drops_tombstones() {
        let newest = vec![(b"a".to_vec(), None), (b"b".to_vec(), Some(b"new".to_vec()))];
        let oldest = vec![
            (b"a".to_vec(), Some(b"old".to_vec())),
            (b"b".to_vec(), Some(b"old".to_vec())),
            (b"c".to_vec(), Some(b"keep".to_vec())),
        ];
        let merged = merge_sources(vec![newest, oldest]);
        assert_eq!(
            merged,
            vec![(b"b".to_vec(), b"new".to_vec()), (b"c".to_vec(), b"keep".to_vec())]
        );
    }
}
