use std::error::Error;
use std::fmt;

use vfs::IoError;

/// Result alias for rocklet operations.
pub type RockResult<T> = Result<T, RockError>;

/// Errors surfaced by the LSM engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RockError {
    /// An underlying file-system error.
    Io(IoError),
    /// On-disk data failed validation (bad checksum, truncated record...).
    Corruption(String),
}

impl fmt::Display for RockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RockError::Io(e) => write!(f, "i/o error: {e}"),
            RockError::Corruption(m) => write!(f, "corruption: {m}"),
        }
    }
}

impl Error for RockError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RockError::Io(e) => Some(e),
            RockError::Corruption(_) => None,
        }
    }
}

impl From<IoError> for RockError {
    fn from(e: IoError) -> Self {
        RockError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = RockError::from(IoError::NoSpace);
        assert_eq!(e.to_string(), "i/o error: no space left on device");
        assert!(std::error::Error::source(&e).is_some());
        let c = RockError::Corruption("bad crc".into());
        assert_eq!(c.to_string(), "corruption: bad crc");
    }
}
