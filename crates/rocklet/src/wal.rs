use std::sync::Arc;

use simclock::ActorClock;
use vfs::{Fd, FileSystem, OpenFlags};

use crate::{fnv1a, RockError, RockResult};

/// Operation tags in WAL records.
const OP_PUT: u8 = 1;
const OP_DELETE: u8 = 2;

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct WalRecord {
    pub seq: u64,
    pub key: Vec<u8>,
    /// `None` encodes a delete.
    pub value: Option<Vec<u8>>,
}

/// The write-ahead log: an append-only file of checksummed records.
///
/// This is the file on the *synchronous critical path* of every db_bench
/// write — the paper's RocksDB numbers are dominated by the `append` +
/// `fsync` sequence here, which NVCache turns into an NVMM log append plus
/// a no-op.
pub(crate) struct Wal {
    fs: Arc<dyn FileSystem>,
    path: String,
    fd: Fd,
    offset: u64,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("offset", &self.offset)
            .finish()
    }
}

fn encode(seq: u64, key: &[u8], value: Option<&[u8]>) -> Vec<u8> {
    let body_len = 8 + 1 + 4 + key.len() + 4 + value.map_or(0, <[u8]>::len);
    let mut buf = Vec::with_capacity(8 + body_len);
    buf.extend_from_slice(&(body_len as u32).to_le_bytes());
    buf.extend_from_slice(&[0u8; 4]); // crc patched below
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.push(if value.is_some() { OP_PUT } else { OP_DELETE });
    buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
    buf.extend_from_slice(key);
    match value {
        Some(v) => {
            buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
            buf.extend_from_slice(v);
        }
        None => buf.extend_from_slice(&u32::MAX.to_le_bytes()),
    }
    let crc = (fnv1a(&buf[8..]) as u32).to_le_bytes();
    buf[4..8].copy_from_slice(&crc);
    buf
}

impl Wal {
    /// Creates (truncating) a WAL at `path`.
    pub fn create(fs: Arc<dyn FileSystem>, path: &str, clock: &ActorClock) -> RockResult<Wal> {
        let fd = fs.open(path, OpenFlags::RDWR | OpenFlags::CREATE | OpenFlags::TRUNC, clock)?;
        Ok(Wal { fs, path: path.to_string(), fd, offset: 0 })
    }

    /// Appends one record; durable once [`sync`](Wal::sync) returns (or
    /// immediately on file systems with synchronous durability).
    pub fn append(
        &mut self,
        seq: u64,
        key: &[u8],
        value: Option<&[u8]>,
        clock: &ActorClock,
    ) -> RockResult<()> {
        let buf = encode(seq, key, value);
        self.fs.pwrite(self.fd, &buf, self.offset, clock)?;
        self.offset += buf.len() as u64;
        Ok(())
    }

    /// Forces the log to durable storage.
    pub fn sync(&self, clock: &ActorClock) -> RockResult<()> {
        self.fs.fsync(self.fd, clock)?;
        Ok(())
    }

    /// Bytes appended so far.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> u64 {
        self.offset
    }

    /// Closes and removes the log file (after a successful memtable flush).
    pub fn remove(self, clock: &ActorClock) -> RockResult<()> {
        self.fs.close(self.fd, clock)?;
        self.fs.unlink(&self.path, clock)?;
        Ok(())
    }

    /// Replays a WAL file, returning its records in order. Stops cleanly at
    /// the first torn or corrupt record (crash during append).
    pub fn replay(
        fs: &Arc<dyn FileSystem>,
        path: &str,
        clock: &ActorClock,
    ) -> RockResult<Vec<WalRecord>> {
        let fd = match fs.open(path, OpenFlags::RDONLY, clock) {
            Ok(fd) => fd,
            Err(vfs::IoError::NotFound(_)) => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        let size = fs.fstat(fd, clock)?.size;
        let mut data = vec![0u8; size as usize];
        let n = fs.pread(fd, &mut data, 0, clock)?;
        data.truncate(n);
        fs.close(fd, clock)?;

        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos + 8 <= data.len() {
            let body_len =
                u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes"));
            let body_end = pos + 8 + body_len;
            if body_len < 17 || body_end > data.len() {
                break; // torn tail
            }
            let body = &data[pos + 8..body_end];
            if fnv1a(body) as u32 != crc {
                break; // corrupt tail
            }
            let seq = u64::from_le_bytes(body[0..8].try_into().expect("8 bytes"));
            let op = body[8];
            let klen = u32::from_le_bytes(body[9..13].try_into().expect("4 bytes")) as usize;
            if 13 + klen + 4 > body.len() {
                return Err(RockError::Corruption(format!("bad key length in {path}")));
            }
            let key = body[13..13 + klen].to_vec();
            let vlen_raw =
                u32::from_le_bytes(body[13 + klen..17 + klen].try_into().expect("4 bytes"));
            let value = if op == OP_DELETE || vlen_raw == u32::MAX {
                None
            } else {
                let vlen = vlen_raw as usize;
                if 17 + klen + vlen > body.len() {
                    return Err(RockError::Corruption(format!("bad value length in {path}")));
                }
                Some(body[17 + klen..17 + klen + vlen].to_vec())
            };
            out.push(WalRecord { seq, key, value });
            pos = body_end;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::MemFs;

    fn setup() -> (ActorClock, Arc<dyn FileSystem>) {
        (ActorClock::new(), Arc::new(MemFs::new()))
    }

    #[test]
    fn append_then_replay() {
        let (c, fs) = setup();
        let mut wal = Wal::create(Arc::clone(&fs), "/wal", &c).unwrap();
        wal.append(1, b"alpha", Some(b"one"), &c).unwrap();
        wal.append(2, b"beta", None, &c).unwrap();
        wal.sync(&c).unwrap();
        let records = Wal::replay(&fs, "/wal", &c).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(
            records[0],
            WalRecord { seq: 1, key: b"alpha".to_vec(), value: Some(b"one".to_vec()) }
        );
        assert_eq!(records[1], WalRecord { seq: 2, key: b"beta".to_vec(), value: None });
    }

    #[test]
    fn torn_tail_is_ignored() {
        let (c, fs) = setup();
        let mut wal = Wal::create(Arc::clone(&fs), "/torn", &c).unwrap();
        wal.append(1, b"good", Some(b"record"), &c).unwrap();
        let good_len = wal.len();
        // Simulate a torn append: write half of a record's worth of garbage.
        let fd = fs.open("/torn", OpenFlags::RDWR, &c).unwrap();
        fs.pwrite(fd, &[0xFF; 9], good_len, &c).unwrap();
        fs.close(fd, &c).unwrap();
        let records = Wal::replay(&fs, "/torn", &c).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].key, b"good");
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let (c, fs) = setup();
        let mut wal = Wal::create(Arc::clone(&fs), "/crc", &c).unwrap();
        wal.append(1, b"a", Some(b"1"), &c).unwrap();
        wal.append(2, b"b", Some(b"2"), &c).unwrap();
        // Flip a byte in the second record's body.
        let first_len = encode(1, b"a", Some(b"1")).len() as u64;
        let fd = fs.open("/crc", OpenFlags::RDWR, &c).unwrap();
        fs.pwrite(fd, &[0xAA], first_len + 12, &c).unwrap();
        fs.close(fd, &c).unwrap();
        let records = Wal::replay(&fs, "/crc", &c).unwrap();
        assert_eq!(records.len(), 1, "replay must stop at the corrupt record");
    }

    #[test]
    fn missing_wal_replays_empty() {
        let (c, fs) = setup();
        assert!(Wal::replay(&fs, "/nope", &c).unwrap().is_empty());
    }

    #[test]
    fn remove_unlinks_the_file() {
        let (c, fs) = setup();
        let wal = Wal::create(Arc::clone(&fs), "/rm", &c).unwrap();
        wal.remove(&c).unwrap();
        assert!(fs.stat("/rm", &c).is_err());
    }
}
