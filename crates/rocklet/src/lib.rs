//! rocklet — a log-structured merge-tree key-value store.
//!
//! The paper's evaluation drives RocksDB v6.8 with `db_bench` (§IV-A); this
//! crate is the reproduction's stand-in: a complete LSM engine — write-ahead
//! log, memtable, sorted string tables with block index and bloom filters,
//! size-tiered compaction, crash-safe MANIFEST — whose only view of storage
//! is the [`vfs::FileSystem`] trait. Its I/O pattern is the one that matters
//! for the paper's figures: small synchronous WAL appends on the critical
//! path (`fsync` per write in sync mode) plus large sequential flush and
//! compaction writes in the background.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use rocklet::{RockletDb, RockletOptions, WriteOptions};
//! use simclock::ActorClock;
//! use vfs::{FileSystem, MemFs};
//!
//! # fn main() -> Result<(), rocklet::RockError> {
//! let clock = ActorClock::new();
//! let fs: Arc<dyn FileSystem> = Arc::new(MemFs::new());
//! let db = RockletDb::open(fs, "/db", RockletOptions::default(), &clock)?;
//! db.put(b"key", b"value", &WriteOptions { sync: true }, &clock)?;
//! assert_eq!(db.get(b"key", &clock)?.as_deref(), Some(&b"value"[..]));
//! # Ok(())
//! # }
//! ```

mod bench;
mod db;
mod error;
mod memtable;
mod options;
mod sstable;
mod wal;

pub use bench::{prefill, run_db_bench, BenchOptions, BenchResult, RockBench};
pub use db::RockletDb;
pub use error::{RockError, RockResult};
pub use options::{RockletOptions, WriteOptions};

/// One key with its value, or a tombstone (`None`) marking a deletion.
pub(crate) type Record = (Vec<u8>, Option<Vec<u8>>);

/// FNV-1a 64-bit hash — checksums and bloom-filter hashing.
pub(crate) fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// db_bench-style zero-padded 16-byte key for index `n`.
pub fn bench_key(n: u64) -> Vec<u8> {
    format!("{n:016}").into_bytes()
}

#[cfg(test)]
mod hash_tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_spreads() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }

    #[test]
    fn bench_keys_sort_numerically() {
        assert!(bench_key(9) < bench_key(10));
        assert!(bench_key(999) < bench_key(1000));
        assert_eq!(bench_key(5).len(), 16);
    }
}
