use std::collections::BTreeMap;
use std::ops::Bound;

/// A value in the memtable: `None` is a tombstone.
pub(crate) type MemValue = Option<Vec<u8>>;

/// The in-memory write buffer: a sorted map plus an approximate byte count
/// used to decide when to flush to a sorted table.
#[derive(Debug, Default)]
pub(crate) struct Memtable {
    map: BTreeMap<Vec<u8>, MemValue>,
    approx_bytes: usize,
}

impl Memtable {
    pub fn new() -> Self {
        Memtable::default()
    }

    /// Inserts a put (or a tombstone when `value` is `None`).
    pub fn insert(&mut self, key: Vec<u8>, value: MemValue) {
        let add = key.len() + value.as_ref().map_or(8, |v| v.len()) + 32;
        if let Some(old) = self.map.insert(key, value) {
            self.approx_bytes = self.approx_bytes.saturating_sub(old.map_or(8, |v| v.len()));
            self.approx_bytes += add.saturating_sub(32);
        } else {
            self.approx_bytes += add;
        }
    }

    /// Looks a key up; the outer `Option` distinguishes "absent" from the
    /// inner tombstone.
    pub fn get(&self, key: &[u8]) -> Option<&MemValue> {
        self.map.get(key)
    }

    /// Approximate resident bytes.
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Number of entries (including tombstones).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the memtable holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Sorted iteration over all entries.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<u8>, &MemValue)> {
        self.map.iter()
    }

    /// Sorted iteration starting at `from` (inclusive). Exposed for range
    /// queries; the full-scan path uses [`Memtable::iter`].
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn range_from<'a>(
        &'a self,
        from: &[u8],
    ) -> impl Iterator<Item = (&'a Vec<u8>, &'a MemValue)> {
        self.map.range::<[u8], _>((Bound::Included(from), Bound::Unbounded))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_overwrite() {
        let mut m = Memtable::new();
        m.insert(b"a".to_vec(), Some(b"1".to_vec()));
        m.insert(b"a".to_vec(), Some(b"2".to_vec()));
        assert_eq!(m.get(b"a"), Some(&Some(b"2".to_vec())));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn tombstones_are_present_entries() {
        let mut m = Memtable::new();
        m.insert(b"k".to_vec(), Some(b"v".to_vec()));
        m.insert(b"k".to_vec(), None);
        assert_eq!(m.get(b"k"), Some(&None));
        assert_eq!(m.get(b"missing"), None);
    }

    #[test]
    fn bytes_grow_with_content() {
        let mut m = Memtable::new();
        let before = m.approx_bytes();
        m.insert(vec![0; 100], Some(vec![0; 1000]));
        assert!(m.approx_bytes() >= before + 1100);
    }

    #[test]
    fn iteration_is_sorted() {
        let mut m = Memtable::new();
        m.insert(b"c".to_vec(), Some(vec![]));
        m.insert(b"a".to_vec(), Some(vec![]));
        m.insert(b"b".to_vec(), Some(vec![]));
        let keys: Vec<&[u8]> = m.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![b"a".as_slice(), b"b", b"c"]);
        let from_b: Vec<&[u8]> = m.range_from(b"b").map(|(k, _)| k.as_slice()).collect();
        assert_eq!(from_b, vec![b"b".as_slice(), b"c"]);
    }
}
