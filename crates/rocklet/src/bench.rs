use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simclock::{ActorClock, SimTime};

use crate::{bench_key, RockResult, RockletDb, WriteOptions};

/// The db_bench workloads the paper evaluates (Fig. 3): the write-heavy
/// trio under synchronous writes, plus the two read workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RockBench {
    /// Sequential-key inserts.
    FillSeq,
    /// Random-key inserts.
    FillRandom,
    /// Random overwrites of an existing key space.
    Overwrite,
    /// Random point lookups.
    ReadRandom,
    /// Full sequential iteration.
    ReadSeq,
}

impl RockBench {
    /// db_bench-compatible workload name.
    pub fn name(self) -> &'static str {
        match self {
            RockBench::FillSeq => "fillseq",
            RockBench::FillRandom => "fillrandom",
            RockBench::Overwrite => "overwrite",
            RockBench::ReadRandom => "readrandom",
            RockBench::ReadSeq => "readseq",
        }
    }

    /// Whether the workload needs a pre-populated database.
    pub fn needs_prefill(self) -> bool {
        matches!(self, RockBench::Overwrite | RockBench::ReadRandom | RockBench::ReadSeq)
    }
}

/// db_bench-style run options.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Number of operations (`--num`).
    pub num: u64,
    /// Value size in bytes (`--value_size`, db_bench default 100).
    pub value_size: usize,
    /// Synchronous writes (`--sync`): the paper's write figures use this.
    pub sync: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions { num: 10_000, value_size: 100, sync: true, seed: 42 }
    }
}

/// Outcome of one workload run.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Workload name.
    pub name: &'static str,
    /// Operations executed.
    pub ops: u64,
    /// Virtual wall time of the run.
    pub elapsed: SimTime,
    /// Mean latency per operation, in microseconds — the unit of Fig. 3.
    pub mean_latency_us: f64,
    /// Operations per virtual second.
    pub ops_per_sec: f64,
}

fn make_value(size: usize, salt: u64) -> Vec<u8> {
    (0..size)
        .map(|i| ((i as u64).wrapping_mul(131).wrapping_add(salt) % 251) as u8)
        .collect()
}

/// Pre-populates `db` with `num` sequential keys (layout phase for the
/// workloads that need existing data). Charged to `clock`.
///
/// # Errors
///
/// Propagates engine errors.
pub fn prefill(db: &RockletDb, opts: &BenchOptions, clock: &ActorClock) -> RockResult<()> {
    let wo = WriteOptions { sync: false };
    for i in 0..opts.num {
        db.put(&bench_key(i), &make_value(opts.value_size, i), &wo, clock)?;
    }
    Ok(())
}

/// Runs one db_bench workload and reports latency/throughput.
///
/// # Errors
///
/// Propagates engine errors.
pub fn run_db_bench(
    db: &RockletDb,
    bench: RockBench,
    opts: &BenchOptions,
    clock: &ActorClock,
) -> RockResult<BenchResult> {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let wo = WriteOptions { sync: opts.sync };
    let start = clock.now();
    let mut ops = 0u64;
    match bench {
        RockBench::FillSeq => {
            for i in 0..opts.num {
                db.put(&bench_key(i), &make_value(opts.value_size, i), &wo, clock)?;
                ops += 1;
            }
        }
        RockBench::FillRandom | RockBench::Overwrite => {
            for _ in 0..opts.num {
                let i = rng.gen_range(0..opts.num);
                db.put(&bench_key(i), &make_value(opts.value_size, i), &wo, clock)?;
                ops += 1;
            }
        }
        RockBench::ReadRandom => {
            let mut found = 0u64;
            for _ in 0..opts.num {
                let i = rng.gen_range(0..opts.num);
                if db.get(&bench_key(i), clock)?.is_some() {
                    found += 1;
                }
                ops += 1;
            }
            debug_assert!(found > 0, "readrandom found nothing — missing prefill?");
        }
        RockBench::ReadSeq => {
            let all = db.scan_all(clock)?;
            ops = all.len() as u64;
            // Iterator CPU cost per visited entry (db_bench walks and
            // validates each one).
            clock.advance(SimTime::from_nanos(120) * ops);
        }
    }
    let elapsed = clock.now() - start;
    let secs = elapsed.as_secs_f64();
    Ok(BenchResult {
        name: bench.name(),
        ops,
        elapsed,
        mean_latency_us: if ops == 0 { 0.0 } else { elapsed.as_micros_f64() / ops as f64 },
        ops_per_sec: if secs == 0.0 { 0.0 } else { ops as f64 / secs },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RockletOptions;
    use std::sync::Arc;
    use vfs::{FileSystem, MemFs};

    fn db() -> (ActorClock, RockletDb) {
        let c = ActorClock::new();
        let fs: Arc<dyn FileSystem> = Arc::new(MemFs::new());
        let db = RockletDb::open(fs, "/bench", RockletOptions::tiny(), &c).unwrap();
        (c, db)
    }

    #[test]
    fn fillseq_then_readrandom() {
        let (c, db) = db();
        let opts = BenchOptions { num: 500, ..BenchOptions::default() };
        let fill = run_db_bench(&db, RockBench::FillSeq, &opts, &c).unwrap();
        assert_eq!(fill.ops, 500);
        assert!(fill.mean_latency_us > 0.0);
        let read = run_db_bench(&db, RockBench::ReadRandom, &opts, &c).unwrap();
        assert_eq!(read.ops, 500);
    }

    #[test]
    fn readseq_scans_everything() {
        let (c, db) = db();
        let opts = BenchOptions { num: 300, ..BenchOptions::default() };
        prefill(&db, &opts, &c).unwrap();
        let r = run_db_bench(&db, RockBench::ReadSeq, &opts, &c).unwrap();
        assert_eq!(r.ops, 300);
    }

    #[test]
    fn overwrite_runs_over_prefilled_data() {
        let (c, db) = db();
        let opts = BenchOptions { num: 400, ..BenchOptions::default() };
        prefill(&db, &opts, &c).unwrap();
        let r = run_db_bench(&db, RockBench::Overwrite, &opts, &c).unwrap();
        assert_eq!(r.ops, 400);
        assert!(r.ops_per_sec > 0.0);
    }

    #[test]
    fn sync_mode_is_slower_than_async() {
        let c1 = ActorClock::new();
        let fs1: Arc<dyn FileSystem> = Arc::new(MemFs::new());
        let db1 = RockletDb::open(fs1, "/a", RockletOptions::default(), &c1).unwrap();
        let sync = run_db_bench(
            &db1,
            RockBench::FillSeq,
            &BenchOptions { num: 300, sync: true, ..BenchOptions::default() },
            &c1,
        )
        .unwrap();
        let c2 = ActorClock::new();
        let fs2: Arc<dyn FileSystem> = Arc::new(MemFs::new());
        let db2 = RockletDb::open(fs2, "/b", RockletOptions::default(), &c2).unwrap();
        let nosync = run_db_bench(
            &db2,
            RockBench::FillSeq,
            &BenchOptions { num: 300, sync: false, ..BenchOptions::default() },
            &c2,
        )
        .unwrap();
        // On MemFs fsync is a no-op syscall, so the gap is small but must
        // not be negative.
        assert!(sync.elapsed >= nosync.elapsed);
    }
}
