/// Engine tuning parameters.
///
/// Defaults are scaled-down RocksDB-ish values appropriate for the
/// simulation (a 4 MiB memtable instead of 64 MiB, etc.); the ratios —
/// memtable to table size, L0 trigger — match the real engine's defaults.
#[derive(Debug, Clone)]
pub struct RockletOptions {
    /// Flush the memtable once it holds this many bytes.
    pub memtable_bytes: usize,
    /// Start a compaction when level 0 holds this many tables.
    pub l0_compaction_trigger: usize,
    /// Split compaction output tables at this size.
    pub target_table_bytes: u64,
    /// Data block size inside tables.
    pub block_bytes: usize,
    /// Bloom filter bits per key (0 disables blooms).
    pub bloom_bits_per_key: usize,
}

impl Default for RockletOptions {
    fn default() -> Self {
        RockletOptions {
            memtable_bytes: 4 << 20,
            l0_compaction_trigger: 4,
            target_table_bytes: 8 << 20,
            block_bytes: 4096,
            bloom_bits_per_key: 10,
        }
    }
}

impl RockletOptions {
    /// A small configuration for unit tests (frequent flush/compaction).
    pub fn tiny() -> Self {
        RockletOptions {
            memtable_bytes: 4 << 10,
            l0_compaction_trigger: 3,
            target_table_bytes: 16 << 10,
            block_bytes: 1024,
            bloom_bits_per_key: 10,
        }
    }
}

/// Per-write durability options, as in RocksDB's `WriteOptions`.
#[derive(Debug, Clone, Copy, Default)]
pub struct WriteOptions {
    /// Fsync the WAL before acknowledging the write (the paper benches run
    /// with the benchmark's synchronous mode on — §IV-B).
    pub sync: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let o = RockletOptions::default();
        assert!(o.memtable_bytes <= o.target_table_bytes as usize * 4);
        assert!(o.l0_compaction_trigger >= 2);
        let t = RockletOptions::tiny();
        assert!(t.memtable_bytes < o.memtable_bytes);
    }
}
