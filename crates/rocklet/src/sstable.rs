use std::sync::Arc;

use simclock::ActorClock;
use vfs::{FileSystem, OpenFlags};

use crate::{fnv1a, Record, RockError, RockResult};

const MAGIC: u64 = u64::from_le_bytes(*b"ROCKLET1");
/// Footer: index_off, index_len, bloom_off, bloom_len, count, magic.
const FOOTER_BYTES: u64 = 48;
/// Value-length tag for tombstones.
const TOMBSTONE: u32 = u32::MAX;

/// A bloom filter over the table's keys (double hashing, RocksDB-style).
#[derive(Debug, Clone)]
pub(crate) struct Bloom {
    bits: Vec<u8>,
    k: u32,
}

impl Bloom {
    pub fn build(keys: &[&[u8]], bits_per_key: usize) -> Bloom {
        if bits_per_key == 0 || keys.is_empty() {
            return Bloom { bits: Vec::new(), k: 0 };
        }
        let nbits = (keys.len() * bits_per_key).max(64);
        let nbytes = nbits.div_ceil(8);
        let k = ((bits_per_key as f64 * 0.69) as u32).clamp(1, 30);
        let mut bits = vec![0u8; nbytes];
        for key in keys {
            let h = fnv1a(key);
            let delta = h.rotate_left(31);
            let mut pos = h;
            for _ in 0..k {
                let bit = (pos % (nbytes as u64 * 8)) as usize;
                bits[bit / 8] |= 1 << (bit % 8);
                pos = pos.wrapping_add(delta);
            }
        }
        Bloom { bits, k }
    }

    pub fn from_bytes(bytes: Vec<u8>, k: u32) -> Bloom {
        Bloom { bits: bytes, k }
    }

    pub fn may_contain(&self, key: &[u8]) -> bool {
        if self.k == 0 || self.bits.is_empty() {
            return true;
        }
        let nbits = self.bits.len() as u64 * 8;
        let h = fnv1a(key);
        let delta = h.rotate_left(31);
        let mut pos = h;
        for _ in 0..self.k {
            let bit = (pos % nbits) as usize;
            if self.bits[bit / 8] & (1 << (bit % 8)) == 0 {
                return false;
            }
            pos = pos.wrapping_add(delta);
        }
        true
    }

    fn encoded(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.bits.len());
        out.extend_from_slice(&self.k.to_le_bytes());
        out.extend_from_slice(&self.bits);
        out
    }
}

/// One index entry: the last key of a block and the block's extent.
#[derive(Debug, Clone)]
struct IndexEntry {
    last_key: Vec<u8>,
    off: u64,
    len: u32,
}

/// Builds a sorted string table from already-sorted input.
pub(crate) struct TableBuilder {
    fs: Arc<dyn FileSystem>,
    fd: vfs::Fd,
    path: String,
    block: Vec<u8>,
    block_bytes: usize,
    offset: u64,
    index: Vec<IndexEntry>,
    keys: Vec<Vec<u8>>,
    last_in_block: Vec<u8>,
    count: u64,
    bloom_bits_per_key: usize,
    first_key: Option<Vec<u8>>,
}

impl TableBuilder {
    pub fn create(
        fs: Arc<dyn FileSystem>,
        path: &str,
        block_bytes: usize,
        bloom_bits_per_key: usize,
        clock: &ActorClock,
    ) -> RockResult<TableBuilder> {
        let fd = fs.open(path, OpenFlags::RDWR | OpenFlags::CREATE | OpenFlags::TRUNC, clock)?;
        Ok(TableBuilder {
            fs,
            fd,
            path: path.to_string(),
            block: Vec::with_capacity(block_bytes * 2),
            block_bytes,
            offset: 0,
            index: Vec::new(),
            keys: Vec::new(),
            last_in_block: Vec::new(),
            count: 0,
            bloom_bits_per_key,
            first_key: None,
        })
    }

    /// Adds the next entry; keys must arrive in strictly increasing order.
    ///
    /// # Panics
    ///
    /// Panics (debug) on out-of-order keys — the callers merge-sort.
    pub fn add(&mut self, key: &[u8], value: Option<&[u8]>, clock: &ActorClock) -> RockResult<()> {
        debug_assert!(
            self.keys.last().is_none_or(|k| k.as_slice() < key),
            "keys must be added in order"
        );
        if self.first_key.is_none() {
            self.first_key = Some(key.to_vec());
        }
        self.block.extend_from_slice(&(key.len() as u32).to_le_bytes());
        match value {
            Some(v) => {
                self.block.extend_from_slice(&(v.len() as u32).to_le_bytes());
                self.block.extend_from_slice(key);
                self.block.extend_from_slice(v);
            }
            None => {
                self.block.extend_from_slice(&TOMBSTONE.to_le_bytes());
                self.block.extend_from_slice(key);
            }
        }
        self.keys.push(key.to_vec());
        self.last_in_block = key.to_vec();
        self.count += 1;
        if self.block.len() >= self.block_bytes {
            self.flush_block(clock)?;
        }
        Ok(())
    }

    fn flush_block(&mut self, clock: &ActorClock) -> RockResult<()> {
        if self.block.is_empty() {
            return Ok(());
        }
        self.fs.pwrite(self.fd, &self.block, self.offset, clock)?;
        self.index.push(IndexEntry {
            last_key: self.last_in_block.clone(),
            off: self.offset,
            len: self.block.len() as u32,
        });
        self.offset += self.block.len() as u64;
        self.block.clear();
        Ok(())
    }

    /// Entries added so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Bytes of data blocks written (plus the pending block).
    pub fn approx_bytes(&self) -> u64 {
        self.offset + self.block.len() as u64
    }

    /// Finishes the table: writes index, bloom and footer, fsyncs, and
    /// returns the reader.
    pub fn finish(mut self, clock: &ActorClock) -> RockResult<Table> {
        self.flush_block(clock)?;
        let index_off = self.offset;
        let mut index_buf = Vec::new();
        for e in &self.index {
            index_buf.extend_from_slice(&(e.last_key.len() as u32).to_le_bytes());
            index_buf.extend_from_slice(&e.last_key);
            index_buf.extend_from_slice(&e.off.to_le_bytes());
            index_buf.extend_from_slice(&e.len.to_le_bytes());
        }
        self.fs.pwrite(self.fd, &index_buf, index_off, clock)?;
        let bloom_off = index_off + index_buf.len() as u64;
        let key_refs: Vec<&[u8]> = self.keys.iter().map(Vec::as_slice).collect();
        let bloom = Bloom::build(&key_refs, self.bloom_bits_per_key);
        let bloom_buf = bloom.encoded();
        self.fs.pwrite(self.fd, &bloom_buf, bloom_off, clock)?;
        let mut footer = Vec::with_capacity(FOOTER_BYTES as usize);
        footer.extend_from_slice(&index_off.to_le_bytes());
        footer.extend_from_slice(&(index_buf.len() as u64).to_le_bytes());
        footer.extend_from_slice(&bloom_off.to_le_bytes());
        footer.extend_from_slice(&(bloom_buf.len() as u64).to_le_bytes());
        footer.extend_from_slice(&self.count.to_le_bytes());
        footer.extend_from_slice(&MAGIC.to_le_bytes());
        let footer_off = bloom_off + bloom_buf.len() as u64;
        self.fs.pwrite(self.fd, &footer, footer_off, clock)?;
        self.fs.fsync(self.fd, clock)?;
        self.fs.close(self.fd, clock)?;
        Table::open(self.fs, &self.path, clock)
    }
}

/// A readable sorted string table.
pub(crate) struct Table {
    fs: Arc<dyn FileSystem>,
    pub path: String,
    fd: vfs::Fd,
    index: Vec<IndexEntry>,
    bloom: Bloom,
    pub count: u64,
    pub first_key: Vec<u8>,
    pub last_key: Vec<u8>,
}

impl std::fmt::Debug for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Table")
            .field("path", &self.path)
            .field("count", &self.count)
            .finish()
    }
}

impl Table {
    /// Opens a finished table, loading index and bloom into memory (as
    /// RocksDB pins them in its table cache).
    pub fn open(fs: Arc<dyn FileSystem>, path: &str, clock: &ActorClock) -> RockResult<Table> {
        let fd = fs.open(path, OpenFlags::RDONLY, clock)?;
        let size = fs.fstat(fd, clock)?.size;
        if size < FOOTER_BYTES {
            return Err(RockError::Corruption(format!("{path}: too small for a footer")));
        }
        let mut footer = [0u8; FOOTER_BYTES as usize];
        fs.pread(fd, &mut footer, size - FOOTER_BYTES, clock)?;
        let index_off = u64::from_le_bytes(footer[0..8].try_into().expect("8 bytes"));
        let index_len = u64::from_le_bytes(footer[8..16].try_into().expect("8 bytes"));
        let bloom_off = u64::from_le_bytes(footer[16..24].try_into().expect("8 bytes"));
        let bloom_len = u64::from_le_bytes(footer[24..32].try_into().expect("8 bytes"));
        let count = u64::from_le_bytes(footer[32..40].try_into().expect("8 bytes"));
        let magic = u64::from_le_bytes(footer[40..48].try_into().expect("8 bytes"));
        if magic != MAGIC {
            return Err(RockError::Corruption(format!("{path}: bad magic")));
        }
        let mut index_buf = vec![0u8; index_len as usize];
        fs.pread(fd, &mut index_buf, index_off, clock)?;
        let mut index = Vec::new();
        let mut pos = 0usize;
        while pos < index_buf.len() {
            let klen =
                u32::from_le_bytes(index_buf[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            pos += 4;
            let last_key = index_buf[pos..pos + klen].to_vec();
            pos += klen;
            let off = u64::from_le_bytes(index_buf[pos..pos + 8].try_into().expect("8 bytes"));
            pos += 8;
            let len = u32::from_le_bytes(index_buf[pos..pos + 4].try_into().expect("4 bytes"));
            pos += 4;
            index.push(IndexEntry { last_key, off, len });
        }
        let mut bloom_buf = vec![0u8; bloom_len as usize];
        fs.pread(fd, &mut bloom_buf, bloom_off, clock)?;
        let bloom = if bloom_buf.len() >= 4 {
            let k = u32::from_le_bytes(bloom_buf[0..4].try_into().expect("4 bytes"));
            Bloom::from_bytes(bloom_buf[4..].to_vec(), k)
        } else {
            Bloom::from_bytes(Vec::new(), 0)
        };
        // First/last keys come from the first block's first record and the
        // last index entry.
        let (first_key, last_key) = if index.is_empty() {
            (Vec::new(), Vec::new())
        } else {
            let first_block = Self::read_block_raw(&fs, fd, &index[0], clock)?;
            let first = decode_block(&first_block)?
                .into_iter()
                .next()
                .map(|(k, _)| k)
                .unwrap_or_default();
            (first, index.last().expect("nonempty").last_key.clone())
        };
        Ok(Table { fs, path: path.to_string(), fd, index, bloom, count, first_key, last_key })
    }

    fn read_block_raw(
        fs: &Arc<dyn FileSystem>,
        fd: vfs::Fd,
        e: &IndexEntry,
        clock: &ActorClock,
    ) -> RockResult<Vec<u8>> {
        let mut buf = vec![0u8; e.len as usize];
        fs.pread(fd, &mut buf, e.off, clock)?;
        Ok(buf)
    }

    /// Point lookup: bloom, then binary search in the index, then a block
    /// scan. Returns `Some(None)` for a tombstone.
    pub fn get(&self, key: &[u8], clock: &ActorClock) -> RockResult<Option<Option<Vec<u8>>>> {
        if !self.bloom.may_contain(key) {
            return Ok(None);
        }
        let idx = self.index.partition_point(|e| e.last_key.as_slice() < key);
        let Some(entry) = self.index.get(idx) else { return Ok(None) };
        let block = Self::read_block_raw(&self.fs, self.fd, entry, clock)?;
        for (k, v) in decode_block(&block)? {
            if k == key {
                return Ok(Some(v));
            }
        }
        Ok(None)
    }

    /// Full sorted scan of the table.
    pub fn scan(&self, clock: &ActorClock) -> RockResult<Vec<Record>> {
        let mut out = Vec::with_capacity(self.count as usize);
        for e in &self.index {
            let block = Self::read_block_raw(&self.fs, self.fd, e, clock)?;
            out.extend(decode_block(&block)?);
        }
        Ok(out)
    }

    /// Closes the table's descriptor and removes the file (compaction
    /// garbage collection).
    pub fn delete(self, clock: &ActorClock) -> RockResult<()> {
        self.fs.close(self.fd, clock)?;
        self.fs.unlink(&self.path, clock)?;
        Ok(())
    }

    /// Closes the descriptor, keeping the file (shutdown).
    pub fn close(self, clock: &ActorClock) -> RockResult<()> {
        self.fs.close(self.fd, clock)?;
        Ok(())
    }
}

/// Decodes a data block into (key, value-or-tombstone) pairs.
fn decode_block(block: &[u8]) -> RockResult<Vec<Record>> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos + 8 <= block.len() {
        let klen = u32::from_le_bytes(block[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let vtag = u32::from_le_bytes(block[pos + 4..pos + 8].try_into().expect("4 bytes"));
        pos += 8;
        if pos + klen > block.len() {
            return Err(RockError::Corruption("truncated key in block".into()));
        }
        let key = block[pos..pos + klen].to_vec();
        pos += klen;
        if vtag == TOMBSTONE {
            out.push((key, None));
        } else {
            let vlen = vtag as usize;
            if pos + vlen > block.len() {
                return Err(RockError::Corruption("truncated value in block".into()));
            }
            out.push((key, Some(block[pos..pos + vlen].to_vec())));
            pos += vlen;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::MemFs;

    fn setup() -> (ActorClock, Arc<dyn FileSystem>) {
        (ActorClock::new(), Arc::new(MemFs::new()))
    }

    fn build_table(fs: &Arc<dyn FileSystem>, c: &ActorClock, n: u64) -> Table {
        let mut b = TableBuilder::create(Arc::clone(fs), "/t.sst", 256, 10, c).unwrap();
        for i in 0..n {
            let k = crate::bench_key(i);
            if i % 7 == 3 {
                b.add(&k, None, c).unwrap();
            } else {
                b.add(&k, Some(format!("value-{i}").as_bytes()), c).unwrap();
            }
        }
        b.finish(c).unwrap()
    }

    #[test]
    fn build_then_get() {
        let (c, fs) = setup();
        let t = build_table(&fs, &c, 100);
        assert_eq!(t.count, 100);
        assert_eq!(t.get(&crate::bench_key(42), &c).unwrap(), Some(Some(b"value-42".to_vec())));
        assert_eq!(t.get(&crate::bench_key(3), &c).unwrap(), Some(None), "tombstone");
        assert_eq!(t.get(&crate::bench_key(100), &c).unwrap(), None, "absent");
    }

    #[test]
    fn scan_returns_everything_in_order() {
        let (c, fs) = setup();
        let t = build_table(&fs, &c, 50);
        let all = t.scan(&c).unwrap();
        assert_eq!(all.len(), 50);
        for w in all.windows(2) {
            assert!(w[0].0 < w[1].0, "scan must be sorted");
        }
    }

    #[test]
    fn first_and_last_keys() {
        let (c, fs) = setup();
        let t = build_table(&fs, &c, 10);
        assert_eq!(t.first_key, crate::bench_key(0));
        assert_eq!(t.last_key, crate::bench_key(9));
    }

    #[test]
    fn reopen_after_close() {
        let (c, fs) = setup();
        let t = build_table(&fs, &c, 20);
        t.close(&c).unwrap();
        let t2 = Table::open(Arc::clone(&fs), "/t.sst", &c).unwrap();
        assert_eq!(t2.count, 20);
        assert_eq!(t2.get(&crate::bench_key(5), &c).unwrap(), Some(Some(b"value-5".to_vec())));
    }

    #[test]
    fn bloom_rejects_most_absent_keys() {
        let keys: Vec<Vec<u8>> = (0..1000u64).map(crate::bench_key).collect();
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let bloom = Bloom::build(&refs, 10);
        for k in &keys {
            assert!(bloom.may_contain(k), "no false negatives allowed");
        }
        let mut false_positives = 0;
        for i in 1000u64..2000 {
            if bloom.may_contain(&crate::bench_key(i)) {
                false_positives += 1;
            }
        }
        assert!(false_positives < 50, "false positive rate too high: {false_positives}/1000");
    }

    #[test]
    fn corrupt_magic_is_detected() {
        let (c, fs) = setup();
        let t = build_table(&fs, &c, 5);
        t.close(&c).unwrap();
        let fd = fs.open("/t.sst", OpenFlags::RDWR, &c).unwrap();
        let size = fs.fstat(fd, &c).unwrap().size;
        fs.pwrite(fd, b"XXXXXXXX", size - 8, &c).unwrap();
        fs.close(fd, &c).unwrap();
        assert!(matches!(Table::open(fs, "/t.sst", &c), Err(RockError::Corruption(_))));
    }
}
