use parking_lot::Mutex;

use crate::SimTime;

/// One raw observation: a (virtual time, value) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Virtual time of the observation.
    pub t: SimTime,
    /// Observed value (meaning depends on the series, e.g. cumulative bytes).
    pub value: f64,
}

/// One aggregated bin of a time series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesBin {
    /// Start of the bin.
    pub t: SimTime,
    /// Mean of values that fell into the bin.
    pub mean: f64,
    /// Last value observed in the bin.
    pub last: f64,
    /// Number of samples in the bin.
    pub count: usize,
}

/// A thread-safe recorder of (virtual time, value) samples.
///
/// Used by the FIO stand-in and the figure harnesses to reconstruct the
/// paper's "throughput vs. time" style plots: record cumulative bytes after
/// every operation, then derive per-interval throughput with
/// [`TimeSeries::throughput_mib_s`].
///
/// # Example
///
/// ```
/// use simclock::{SimTime, TimeSeries};
/// let ts = TimeSeries::new();
/// ts.record(SimTime::from_secs(1), 1024.0);
/// ts.record(SimTime::from_secs(2), 4096.0);
/// assert_eq!(ts.len(), 2);
/// assert_eq!(ts.last().unwrap().value, 4096.0);
/// ```
#[derive(Debug, Default)]
pub struct TimeSeries {
    samples: Mutex<Vec<Sample>>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries { samples: Mutex::new(Vec::new()) }
    }

    /// Appends a sample.
    pub fn record(&self, t: SimTime, value: f64) {
        self.samples.lock().push(Sample { t, value });
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.lock().len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.lock().is_empty()
    }

    /// The most recent sample, if any.
    pub fn last(&self) -> Option<Sample> {
        self.samples.lock().last().copied()
    }

    /// A copy of all samples, sorted by time.
    pub fn snapshot(&self) -> Vec<Sample> {
        let mut v = self.samples.lock().clone();
        v.sort_by_key(|s| s.t);
        v
    }

    /// Aggregates samples into fixed-width bins.
    pub fn binned(&self, width: SimTime) -> Vec<SeriesBin> {
        assert!(width > SimTime::ZERO, "bin width must be positive");
        let samples = self.snapshot();
        let mut bins: Vec<SeriesBin> = Vec::new();
        for s in samples {
            let idx = s.t.as_nanos() / width.as_nanos();
            let start = SimTime::from_nanos(idx * width.as_nanos());
            match bins.last_mut() {
                Some(b) if b.t == start => {
                    b.mean += (s.value - b.mean) / (b.count + 1) as f64;
                    b.last = s.value;
                    b.count += 1;
                }
                _ => bins.push(SeriesBin { t: start, mean: s.value, last: s.value, count: 1 }),
            }
        }
        bins
    }

    /// Derives per-bin throughput in MiB/s from a series of *cumulative byte*
    /// samples. Returns `(bin_start, mib_per_s)` pairs.
    pub fn throughput_mib_s(&self, width: SimTime) -> Vec<(SimTime, f64)> {
        let bins = self.binned(width);
        let mut out = Vec::with_capacity(bins.len());
        let mut prev_bytes = 0.0;
        for b in &bins {
            let delta = b.last - prev_bytes;
            prev_bytes = b.last;
            let mib = delta / (1u64 << 20) as f64;
            out.push((b.t, mib / width.as_secs_f64()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_groups_by_interval() {
        let ts = TimeSeries::new();
        ts.record(SimTime::from_millis(100), 1.0);
        ts.record(SimTime::from_millis(200), 3.0);
        ts.record(SimTime::from_millis(1200), 10.0);
        let bins = ts.binned(SimTime::from_secs(1));
        assert_eq!(bins.len(), 2);
        assert_eq!(bins[0].count, 2);
        assert!((bins[0].mean - 2.0).abs() < 1e-9);
        assert_eq!(bins[0].last, 3.0);
        assert_eq!(bins[1].t, SimTime::from_secs(1));
    }

    #[test]
    fn throughput_from_cumulative_bytes() {
        let ts = TimeSeries::new();
        let mib = (1u64 << 20) as f64;
        ts.record(SimTime::from_millis(500), 100.0 * mib);
        ts.record(SimTime::from_millis(1500), 300.0 * mib);
        let tp = ts.throughput_mib_s(SimTime::from_secs(1));
        assert_eq!(tp.len(), 2);
        assert!((tp[0].1 - 100.0).abs() < 1e-6);
        assert!((tp[1].1 - 200.0).abs() < 1e-6);
    }

    #[test]
    fn snapshot_is_sorted() {
        let ts = TimeSeries::new();
        ts.record(SimTime::from_secs(2), 2.0);
        ts.record(SimTime::from_secs(1), 1.0);
        let snap = ts.snapshot();
        assert_eq!(snap[0].value, 1.0);
        assert_eq!(snap[1].value, 2.0);
    }

    #[test]
    #[should_panic(expected = "bin width must be positive")]
    fn zero_bin_width_panics() {
        TimeSeries::new().binned(SimTime::ZERO);
    }

    #[test]
    fn empty_series() {
        let ts = TimeSeries::new();
        assert!(ts.is_empty());
        assert!(ts.last().is_none());
        assert!(ts.binned(SimTime::from_secs(1)).is_empty());
    }
}
