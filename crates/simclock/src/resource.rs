use crate::SimTime;

/// A serially-shared device timeline (an M/G/1-style service point).
///
/// Concurrent actors submit requests with their current virtual time and a
/// service duration; the resource serializes them on a single `busy_until`
/// timeline so queueing delay emerges naturally when several actors hammer
/// the same device (e.g. application writes and cleanup-thread writebacks
/// hitting one SSD).
///
/// # Example
///
/// ```
/// use simclock::{Resource, SimTime};
/// let dev = Resource::new();
/// let a = dev.serve(SimTime::ZERO, SimTime::from_micros(10));
/// let b = dev.serve(SimTime::ZERO, SimTime::from_micros(10));
/// // The second request queued behind the first.
/// assert_eq!(a, SimTime::from_micros(10));
/// assert_eq!(b, SimTime::from_micros(20));
/// ```
#[derive(Debug)]
pub struct Resource {
    inner: ChannelResource,
}

impl Default for Resource {
    fn default() -> Self {
        Self::new()
    }
}

impl Resource {
    /// Creates an idle resource.
    pub fn new() -> Self {
        // A serial timeline is exactly a one-channel queue; sharing the
        // implementation keeps the two behaviorally identical by
        // construction (`one_channel_matches_the_serial_resource`).
        Resource { inner: ChannelResource::new(1) }
    }

    /// Submits a request arriving at `now` needing `service` time; returns the
    /// completion time. The caller should `advance_to` the returned instant.
    pub fn serve(&self, now: SimTime, service: SimTime) -> SimTime {
        self.inner.serve(now, service)
    }

    /// The time at which the device becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.inner.busy_until()
    }

    /// Resets the device timeline (used when re-seeding an experiment).
    pub fn reset(&self) {
        self.inner.reset()
    }
}

/// A device timeline with `ways` parallel service channels (a k-server
/// queue) — the latency model behind command queueing (SATA NCQ, NVMe
/// submission queues).
///
/// Each request is dispatched to the earliest-free channel: with one channel
/// this is exactly [`Resource`] (strictly serial service); with `k` channels,
/// up to `k` requests whose submission times overlap are served concurrently,
/// which is what makes an io_uring-style batch of writes cheaper than the
/// same writes issued back to back.
///
/// # Example
///
/// ```
/// use simclock::{ChannelResource, SimTime};
/// let dev = ChannelResource::new(2);
/// let a = dev.serve(SimTime::ZERO, SimTime::from_micros(10));
/// let b = dev.serve(SimTime::ZERO, SimTime::from_micros(10));
/// let c = dev.serve(SimTime::ZERO, SimTime::from_micros(10));
/// // Two requests overlap on the two channels; the third queues.
/// assert_eq!(a, SimTime::from_micros(10));
/// assert_eq!(b, SimTime::from_micros(10));
/// assert_eq!(c, SimTime::from_micros(20));
/// ```
#[derive(Debug)]
pub struct ChannelResource {
    channels: std::sync::Mutex<Vec<u64>>,
}

impl ChannelResource {
    /// Creates an idle resource with `ways` parallel channels.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    pub fn new(ways: usize) -> Self {
        assert!(ways >= 1, "a device needs at least one service channel");
        ChannelResource { channels: std::sync::Mutex::new(vec![0; ways]) }
    }

    /// Number of parallel service channels.
    pub fn ways(&self) -> usize {
        self.channels.lock().expect("channel lock").len()
    }

    /// Submits a request arriving at `now` needing `service` time; the
    /// request is dispatched to the earliest-free channel. Returns the
    /// completion time; the caller should `advance_to` it.
    pub fn serve(&self, now: SimTime, service: SimTime) -> SimTime {
        let mut channels = self.channels.lock().expect("channel lock");
        let slot = channels
            .iter()
            .enumerate()
            .min_by_key(|(_, &busy)| busy)
            .map(|(i, _)| i)
            .expect("at least one channel");
        let start = channels[slot].max(now.as_nanos());
        let end = start + service.as_nanos();
        channels[slot] = end;
        SimTime::from_nanos(end)
    }

    /// Submits a full-device barrier (flush/FUA): starts only once every
    /// channel is idle and occupies all of them until completion.
    pub fn serve_barrier(&self, now: SimTime, service: SimTime) -> SimTime {
        let mut channels = self.channels.lock().expect("channel lock");
        let start = channels.iter().copied().max().unwrap_or(0).max(now.as_nanos());
        let end = start + service.as_nanos();
        channels.iter_mut().for_each(|c| *c = end);
        SimTime::from_nanos(end)
    }

    /// The time at which the whole device becomes idle.
    pub fn busy_until(&self) -> SimTime {
        SimTime::from_nanos(
            self.channels.lock().expect("channel lock").iter().copied().max().unwrap_or(0),
        )
    }

    /// Resets every channel timeline (used when re-seeding an experiment).
    pub fn reset(&self) {
        self.channels.lock().expect("channel lock").iter_mut().for_each(|c| *c = 0);
    }
}

/// A bandwidth figure used to convert byte counts into service time.
///
/// # Example
///
/// ```
/// use simclock::{Bandwidth, SimTime};
/// let bw = Bandwidth::mib_per_sec(100.0);
/// // 1 MiB at 100 MiB/s takes 10ms.
/// assert_eq!(bw.time_for(1 << 20), SimTime::from_millis(10));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bandwidth {
    bytes_per_sec: f64,
}

impl Bandwidth {
    /// Creates a bandwidth from MiB/s.
    ///
    /// # Panics
    ///
    /// Panics if `mib` is not a positive finite number.
    pub fn mib_per_sec(mib: f64) -> Self {
        assert!(mib.is_finite() && mib > 0.0, "invalid bandwidth: {mib} MiB/s");
        Bandwidth { bytes_per_sec: mib * (1u64 << 20) as f64 }
    }

    /// Creates a bandwidth from GiB/s.
    pub fn gib_per_sec(gib: f64) -> Self {
        Self::mib_per_sec(gib * 1024.0)
    }

    /// Scales the bandwidth by `factor` (used for the experiment scale knob).
    pub fn scaled(self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor > 0.0, "invalid scale: {factor}");
        Bandwidth { bytes_per_sec: self.bytes_per_sec * factor }
    }

    /// The bandwidth in bytes per (virtual) second.
    pub fn bytes_per_sec(self) -> f64 {
        self.bytes_per_sec
    }

    /// Service time for transferring `bytes`.
    pub fn time_for(self, bytes: u64) -> SimTime {
        SimTime::from_nanos((bytes as f64 / self.bytes_per_sec * 1e9).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn serial_requests_queue() {
        let r = Resource::new();
        let first = r.serve(SimTime::ZERO, SimTime::from_micros(5));
        let second = r.serve(SimTime::ZERO, SimTime::from_micros(5));
        assert_eq!(first, SimTime::from_micros(5));
        assert_eq!(second, SimTime::from_micros(10));
        assert_eq!(r.busy_until(), SimTime::from_micros(10));
    }

    #[test]
    fn idle_gaps_are_not_charged() {
        let r = Resource::new();
        r.serve(SimTime::ZERO, SimTime::from_micros(1));
        // Arrives long after the device went idle: starts at its own arrival.
        let done = r.serve(SimTime::from_millis(1), SimTime::from_micros(1));
        assert_eq!(done, SimTime::from_millis(1) + SimTime::from_micros(1));
    }

    #[test]
    fn concurrent_total_service_is_conserved() {
        let r = Arc::new(Resource::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    r.serve(SimTime::ZERO, SimTime::from_nanos(10));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // 8 threads x 1000 requests x 10ns, all arriving at t=0 on a serial
        // device: the timeline must extend exactly to the sum of service.
        assert_eq!(r.busy_until(), SimTime::from_nanos(80_000));
    }

    #[test]
    fn bandwidth_conversion() {
        let bw = Bandwidth::mib_per_sec(80.0);
        // 4 KiB at 80 MiB/s = 48.828..µs
        let t = bw.time_for(4096);
        assert!(t > SimTime::from_micros(48) && t < SimTime::from_micros(49));
        let g = Bandwidth::gib_per_sec(2.0);
        assert_eq!(g.time_for(2 << 30), SimTime::from_secs(1));
    }

    #[test]
    fn bandwidth_scaling() {
        let bw = Bandwidth::mib_per_sec(64.0).scaled(0.5);
        assert_eq!(bw.time_for(1 << 20), Bandwidth::mib_per_sec(32.0).time_for(1 << 20));
    }

    #[test]
    fn reset_clears_timeline() {
        let r = Resource::new();
        r.serve(SimTime::ZERO, SimTime::from_secs(1));
        r.reset();
        assert_eq!(r.busy_until(), SimTime::ZERO);
    }

    #[test]
    fn one_channel_matches_the_serial_resource() {
        let serial = Resource::new();
        let one = ChannelResource::new(1);
        for (now, service) in [(0u64, 5u64), (2, 3), (40, 7), (41, 1)] {
            let a = serial.serve(SimTime::from_micros(now), SimTime::from_micros(service));
            let b = one.serve(SimTime::from_micros(now), SimTime::from_micros(service));
            assert_eq!(a, b);
        }
        assert_eq!(serial.busy_until(), one.busy_until());
    }

    #[test]
    fn channels_overlap_up_to_the_way_count() {
        let r = ChannelResource::new(4);
        let done: Vec<SimTime> =
            (0..8).map(|_| r.serve(SimTime::ZERO, SimTime::from_micros(10))).collect();
        // First four overlap fully, next four queue one service time behind.
        assert!(done[..4].iter().all(|&t| t == SimTime::from_micros(10)));
        assert!(done[4..].iter().all(|&t| t == SimTime::from_micros(20)));
    }

    #[test]
    fn barrier_waits_for_every_channel() {
        let r = ChannelResource::new(2);
        r.serve(SimTime::ZERO, SimTime::from_micros(10));
        r.serve(SimTime::ZERO, SimTime::from_micros(30));
        let done = r.serve_barrier(SimTime::ZERO, SimTime::from_micros(5));
        assert_eq!(done, SimTime::from_micros(35));
        // The barrier occupies both channels: the next request queues behind.
        assert_eq!(r.serve(SimTime::ZERO, SimTime::from_micros(1)), SimTime::from_micros(36));
        r.reset();
        assert_eq!(r.busy_until(), SimTime::ZERO);
        assert_eq!(r.ways(), 2);
    }
}
