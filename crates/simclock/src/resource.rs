use std::sync::atomic::{AtomicU64, Ordering};

use crate::SimTime;

/// A serially-shared device timeline (an M/G/1-style service point).
///
/// Concurrent actors submit requests with their current virtual time and a
/// service duration; the resource serializes them on a single `busy_until`
/// timeline so queueing delay emerges naturally when several actors hammer
/// the same device (e.g. application writes and cleanup-thread writebacks
/// hitting one SSD).
///
/// # Example
///
/// ```
/// use simclock::{Resource, SimTime};
/// let dev = Resource::new();
/// let a = dev.serve(SimTime::ZERO, SimTime::from_micros(10));
/// let b = dev.serve(SimTime::ZERO, SimTime::from_micros(10));
/// // The second request queued behind the first.
/// assert_eq!(a, SimTime::from_micros(10));
/// assert_eq!(b, SimTime::from_micros(20));
/// ```
#[derive(Debug, Default)]
pub struct Resource {
    busy_until_ns: AtomicU64,
}

impl Resource {
    /// Creates an idle resource.
    pub fn new() -> Self {
        Resource { busy_until_ns: AtomicU64::new(0) }
    }

    /// Submits a request arriving at `now` needing `service` time; returns the
    /// completion time. The caller should `advance_to` the returned instant.
    pub fn serve(&self, now: SimTime, service: SimTime) -> SimTime {
        let mut cur = self.busy_until_ns.load(Ordering::Acquire);
        loop {
            let start = cur.max(now.as_nanos());
            let end = start + service.as_nanos();
            match self.busy_until_ns.compare_exchange_weak(
                cur,
                end,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return SimTime::from_nanos(end),
                Err(observed) => cur = observed,
            }
        }
    }

    /// The time at which the device becomes idle.
    pub fn busy_until(&self) -> SimTime {
        SimTime::from_nanos(self.busy_until_ns.load(Ordering::Acquire))
    }

    /// Resets the device timeline (used when re-seeding an experiment).
    pub fn reset(&self) {
        self.busy_until_ns.store(0, Ordering::Release);
    }
}

/// A bandwidth figure used to convert byte counts into service time.
///
/// # Example
///
/// ```
/// use simclock::{Bandwidth, SimTime};
/// let bw = Bandwidth::mib_per_sec(100.0);
/// // 1 MiB at 100 MiB/s takes 10ms.
/// assert_eq!(bw.time_for(1 << 20), SimTime::from_millis(10));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bandwidth {
    bytes_per_sec: f64,
}

impl Bandwidth {
    /// Creates a bandwidth from MiB/s.
    ///
    /// # Panics
    ///
    /// Panics if `mib` is not a positive finite number.
    pub fn mib_per_sec(mib: f64) -> Self {
        assert!(mib.is_finite() && mib > 0.0, "invalid bandwidth: {mib} MiB/s");
        Bandwidth { bytes_per_sec: mib * (1u64 << 20) as f64 }
    }

    /// Creates a bandwidth from GiB/s.
    pub fn gib_per_sec(gib: f64) -> Self {
        Self::mib_per_sec(gib * 1024.0)
    }

    /// Scales the bandwidth by `factor` (used for the experiment scale knob).
    pub fn scaled(self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor > 0.0, "invalid scale: {factor}");
        Bandwidth { bytes_per_sec: self.bytes_per_sec * factor }
    }

    /// The bandwidth in bytes per (virtual) second.
    pub fn bytes_per_sec(self) -> f64 {
        self.bytes_per_sec
    }

    /// Service time for transferring `bytes`.
    pub fn time_for(self, bytes: u64) -> SimTime {
        SimTime::from_nanos((bytes as f64 / self.bytes_per_sec * 1e9).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn serial_requests_queue() {
        let r = Resource::new();
        let first = r.serve(SimTime::ZERO, SimTime::from_micros(5));
        let second = r.serve(SimTime::ZERO, SimTime::from_micros(5));
        assert_eq!(first, SimTime::from_micros(5));
        assert_eq!(second, SimTime::from_micros(10));
        assert_eq!(r.busy_until(), SimTime::from_micros(10));
    }

    #[test]
    fn idle_gaps_are_not_charged() {
        let r = Resource::new();
        r.serve(SimTime::ZERO, SimTime::from_micros(1));
        // Arrives long after the device went idle: starts at its own arrival.
        let done = r.serve(SimTime::from_millis(1), SimTime::from_micros(1));
        assert_eq!(done, SimTime::from_millis(1) + SimTime::from_micros(1));
    }

    #[test]
    fn concurrent_total_service_is_conserved() {
        let r = Arc::new(Resource::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    r.serve(SimTime::ZERO, SimTime::from_nanos(10));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // 8 threads x 1000 requests x 10ns, all arriving at t=0 on a serial
        // device: the timeline must extend exactly to the sum of service.
        assert_eq!(r.busy_until(), SimTime::from_nanos(80_000));
    }

    #[test]
    fn bandwidth_conversion() {
        let bw = Bandwidth::mib_per_sec(80.0);
        // 4 KiB at 80 MiB/s = 48.828..µs
        let t = bw.time_for(4096);
        assert!(t > SimTime::from_micros(48) && t < SimTime::from_micros(49));
        let g = Bandwidth::gib_per_sec(2.0);
        assert_eq!(g.time_for(2 << 30), SimTime::from_secs(1));
    }

    #[test]
    fn bandwidth_scaling() {
        let bw = Bandwidth::mib_per_sec(64.0).scaled(0.5);
        assert_eq!(bw.time_for(1 << 20), Bandwidth::mib_per_sec(32.0).time_for(1 << 20));
    }

    #[test]
    fn reset_clears_timeline() {
        let r = Resource::new();
        r.serve(SimTime::ZERO, SimTime::from_secs(1));
        r.reset();
        assert_eq!(r.busy_until(), SimTime::ZERO);
    }
}
