use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) virtual time, in nanoseconds.
///
/// `SimTime` doubles as an instant and a duration; the simulation never needs
/// to distinguish the two and a single newtype keeps arithmetic ergonomic.
///
/// # Example
///
/// ```
/// use simclock::SimTime;
/// let t = SimTime::from_micros(3) + SimTime::from_nanos(500);
/// assert_eq!(t.as_nanos(), 3_500);
/// assert_eq!(format!("{t}"), "3.500µs");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero instant / empty duration.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable time.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Creates a time from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimTime((s * 1e9).round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time in microseconds (floating point).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Time in milliseconds (floating point).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time in seconds (floating point).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// Returns the larger of two times.
    pub fn max(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.max(rhs.0))
    }

    /// Returns the smaller of two times.
    pub fn min(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.min(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        SimTime(iter.map(|t| t.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{}.{:03}µs", ns / 1_000, ns % 1_000)
        } else if ns < 1_000_000_000 {
            write!(f, "{}.{:03}ms", ns / 1_000_000, (ns / 1_000) % 1_000)
        } else {
            write!(f, "{}.{:03}s", ns / 1_000_000_000, (ns / 1_000_000) % 1_000)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimTime::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimTime::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(4);
        assert_eq!((a + b).as_nanos(), 14_000);
        assert_eq!((a - b).as_nanos(), 6_000);
        assert_eq!((a * 3).as_nanos(), 30_000);
        assert_eq!((a / 2).as_nanos(), 5_000);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn display_is_scaled() {
        assert_eq!(format!("{}", SimTime::from_nanos(17)), "17ns");
        assert_eq!(format!("{}", SimTime::from_nanos(1_500)), "1.500µs");
        assert_eq!(format!("{}", SimTime::from_micros(2_500)), "2.500ms");
        assert_eq!(format!("{}", SimTime::from_millis(3_250)), "3.250s");
    }

    #[test]
    fn sum_over_iterator() {
        let total: SimTime = (1..=4).map(SimTime::from_micros).sum();
        assert_eq!(total, SimTime::from_micros(10));
    }

    #[test]
    fn float_seconds() {
        let t = SimTime::from_secs(3) / 2;
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((SimTime::from_micros(1500).as_millis_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_seconds_panic() {
        let _ = SimTime::from_secs_f64(-1.0);
    }
}
