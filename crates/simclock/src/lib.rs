//! Virtual-time primitives for the NVCache reproduction.
//!
//! The whole evaluation stack runs on *simulated* devices: an NVMM DIMM and an
//! SSD that charge latency against **virtual nanoseconds** instead of wall
//! time. Real OS threads execute the protocols (locking, the cleanup thread,
//! CAS races are all real), but every I/O primitive advances an [`ActorClock`]
//! by a modelled service time, and shared devices serialize concurrent
//! requests through a [`Resource`].
//!
//! This model is deterministic for single-threaded workloads and very close to
//! deterministic under concurrency (the only nondeterminism is queueing order
//! at a `Resource`, which affects fairness but not totals).
//!
//! # Example
//!
//! ```
//! use simclock::{ActorClock, Resource, SimTime};
//!
//! let clock = ActorClock::new();
//! let ssd = Resource::new();
//! // Serve a 50µs random write against the device timeline.
//! let done = ssd.serve(clock.now(), SimTime::from_micros(50));
//! clock.advance_to(done);
//! assert_eq!(clock.now(), SimTime::from_micros(50));
//! ```

mod clock;
mod resource;
mod series;
mod time;

pub use clock::ActorClock;
pub use resource::{Bandwidth, ChannelResource, Resource};
pub use series::{Sample, SeriesBin, TimeSeries};
pub use time::SimTime;
