use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::SimTime;

/// A per-actor virtual clock.
///
/// Each simulated execution context (an application thread, the NVCache
/// cleanup thread, a background writeback daemon) owns one `ActorClock`.
/// Device models *charge* latency by advancing the clock; synchronization
/// points (lock hand-offs, log-full waits) propagate time with
/// [`advance_to`](ActorClock::advance_to).
///
/// The clock is internally atomic so other actors may *observe* it (e.g. to
/// stamp a freed log entry with the cleanup thread's time), but only the
/// owning actor should advance it.
///
/// # Example
///
/// ```
/// use simclock::{ActorClock, SimTime};
/// let c = ActorClock::new();
/// c.advance(SimTime::from_micros(7));
/// c.advance_to(SimTime::from_micros(5)); // no-op: already past
/// assert_eq!(c.now(), SimTime::from_micros(7));
/// ```
#[derive(Debug, Default)]
pub struct ActorClock {
    now_ns: AtomicU64,
}

impl ActorClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        ActorClock { now_ns: AtomicU64::new(0) }
    }

    /// Creates a clock starting at `t`.
    pub fn starting_at(t: SimTime) -> Self {
        ActorClock { now_ns: AtomicU64::new(t.as_nanos()) }
    }

    /// Creates a shareable clock at time zero.
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.now_ns.load(Ordering::Acquire))
    }

    /// Advances the clock by `d`.
    pub fn advance(&self, d: SimTime) -> SimTime {
        let ns = self.now_ns.fetch_add(d.as_nanos(), Ordering::AcqRel) + d.as_nanos();
        SimTime::from_nanos(ns)
    }

    /// Advances the clock to at least `t` (monotonic merge, used when an actor
    /// unblocks after waiting on another actor).
    pub fn advance_to(&self, t: SimTime) -> SimTime {
        let target = t.as_nanos();
        let prev = self.now_ns.fetch_max(target, Ordering::AcqRel);
        SimTime::from_nanos(prev.max(target))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn advance_accumulates() {
        let c = ActorClock::new();
        c.advance(SimTime::from_nanos(10));
        c.advance(SimTime::from_nanos(5));
        assert_eq!(c.now(), SimTime::from_nanos(15));
    }

    #[test]
    fn advance_to_is_monotonic() {
        let c = ActorClock::starting_at(SimTime::from_micros(3));
        assert_eq!(c.advance_to(SimTime::from_micros(1)), SimTime::from_micros(3));
        assert_eq!(c.advance_to(SimTime::from_micros(9)), SimTime::from_micros(9));
        assert_eq!(c.now(), SimTime::from_micros(9));
    }

    #[test]
    fn observable_across_threads() {
        let c = Arc::new(ActorClock::new());
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || {
            c2.advance(SimTime::from_micros(42));
        });
        h.join().unwrap();
        assert_eq!(c.now(), SimTime::from_micros(42));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(ActorClock::default().now(), SimTime::ZERO);
    }
}
