use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simclock::ActorClock;

#[cfg(test)]
use simclock::SimTime;

use crate::{NvmmProfile, NvmmStats};

/// Size of a CPU cache line; flushes happen at this granularity.
pub const CACHE_LINE: u64 = 64;

/// Global id source so per-thread flush queues can be keyed per DIMM.
static NEXT_DIMM_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Per-thread `pwb` queues (the hardware analogue is the per-CPU flush
    /// queue drained by `sfence`). Keyed by DIMM id.
    static PENDING_FLUSHES: RefCell<HashMap<u64, Vec<u64>>> = RefCell::new(HashMap::new());
}

/// A simulated NVMM module.
///
/// Maintains a *live* image (CPU caches + media, what loads observe) and a
/// *durable* image (what survives [`crash`](NvDimm::crash)). See the crate
/// docs for the persistency contract.
///
/// All methods take `&self` and are safe to call from multiple threads; the
/// flush queue filled by [`pwb`](NvDimm::pwb) and drained by
/// [`pfence`](NvDimm::pfence) is per-thread, mirroring per-CPU hardware
/// queues.
///
/// Latency is charged directly to the calling actor's clock rather than
/// through a shared device timeline: actors at very different virtual times
/// (the application vs. the far-ahead cleanup thread) would otherwise
/// serialize against each other's futures. Cross-thread DIMM *bandwidth*
/// contention is therefore not modelled — the evaluation's single heavy
/// flusher is always the application thread.
pub struct NvDimm {
    id: u64,
    live: Box<[AtomicU8]>,
    /// Durable shadow; `None` when the profile disables durability tracking.
    durable: Option<Mutex<Box<[u8]>>>,
    /// One bit per cache line: set when live may differ from durable.
    dirty: Box<[AtomicU64]>,
    profile: NvmmProfile,
    stats: NvmmStats,
    /// Persistency-ordering shadow state (per DIMM, never global).
    #[cfg(feature = "pmcheck")]
    pm: crate::pmcheck::PmShadow,
}

impl fmt::Debug for NvDimm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NvDimm")
            .field("id", &self.id)
            .field("len", &self.len())
            .field("tracks_durability", &self.durable.is_some())
            .finish()
    }
}

impl NvDimm {
    /// Creates a zero-filled DIMM of `size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: u64, profile: NvmmProfile) -> Self {
        assert!(size > 0, "NvDimm size must be positive");
        let n = size as usize;
        let mut live = Vec::with_capacity(n);
        live.resize_with(n, || AtomicU8::new(0));
        let lines = size.div_ceil(CACHE_LINE);
        let words = lines.div_ceil(64) as usize;
        let mut dirty = Vec::with_capacity(words);
        dirty.resize_with(words, || AtomicU64::new(0));
        let durable = profile.track_durability.then(|| Mutex::new(vec![0u8; n].into_boxed_slice()));
        NvDimm {
            id: NEXT_DIMM_ID.fetch_add(1, Ordering::Relaxed),
            live: live.into_boxed_slice(),
            durable,
            dirty: dirty.into_boxed_slice(),
            profile,
            stats: NvmmStats::default(),
            #[cfg(feature = "pmcheck")]
            pm: crate::pmcheck::PmShadow::default(),
        }
    }

    /// Creates a DIMM whose live *and* durable images start as `image`.
    pub fn from_image(image: &[u8], profile: NvmmProfile) -> Self {
        let dimm = Self::new(image.len() as u64, profile);
        for (i, b) in image.iter().enumerate() {
            dimm.live[i].store(*b, Ordering::Relaxed);
        }
        if let Some(d) = &dimm.durable {
            d.lock().copy_from_slice(image);
        }
        dimm
    }

    /// Capacity in bytes.
    pub fn len(&self) -> u64 {
        self.live.len() as u64
    }

    /// Whether the DIMM has zero capacity (never true; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// The latency profile in use.
    pub fn profile(&self) -> &NvmmProfile {
        &self.profile
    }

    /// Aggregate operation statistics.
    pub fn stats(&self) -> &NvmmStats {
        &self.stats
    }

    fn check_range(&self, off: u64, len: usize) {
        let end = off
            .checked_add(len as u64)
            .unwrap_or_else(|| panic!("NVMM range overflow at {off}+{len}"));
        assert!(end <= self.len(), "NVMM access out of range: {off}..{end} beyond {}", self.len());
    }

    fn mark_dirty(&self, off: u64, len: usize) {
        if len == 0 {
            return;
        }
        let first = off / CACHE_LINE;
        let last = (off + len as u64 - 1) / CACHE_LINE;
        for line in first..=last {
            let word = (line / 64) as usize;
            let bit = 1u64 << (line % 64);
            self.dirty[word].fetch_or(bit, Ordering::Relaxed);
        }
    }

    /// Stores `data` at `off` (CPU-cache speed; **not durable** until flushed).
    #[cfg_attr(feature = "pmcheck", track_caller)]
    pub fn write(&self, off: u64, data: &[u8], clock: &ActorClock) {
        self.check_range(off, data.len());
        #[cfg(feature = "pmcheck")]
        if !data.is_empty() {
            let first = off / CACHE_LINE;
            let last = (off + data.len() as u64 - 1) / CACHE_LINE;
            let site = crate::pmcheck::Site::here(std::panic::Location::caller());
            self.pm.on_write(first, last, site);
        }
        for (i, b) in data.iter().enumerate() {
            self.live[off as usize + i].store(*b, Ordering::Relaxed);
        }
        self.mark_dirty(off, data.len());
        self.stats.bytes_stored.fetch_add(data.len() as u64, Ordering::Relaxed);
        clock.advance(self.profile.store_bandwidth.time_for(data.len() as u64));
    }

    /// Reads `buf.len()` bytes at `off`, charging media read latency (models a
    /// load that misses the CPU cache — bulk scans, recovery, dirty-miss).
    pub fn read(&self, off: u64, buf: &mut [u8], clock: &ActorClock) {
        self.read_cached(off, buf);
        self.stats.bytes_read.fetch_add(buf.len() as u64, Ordering::Relaxed);
        let service =
            self.profile.read_latency + self.profile.read_bandwidth.time_for(buf.len() as u64);
        clock.advance(service);
    }

    /// Reads without charging time (models a load served by the CPU cache,
    /// e.g. metadata the thread itself wrote moments ago).
    pub fn read_cached(&self, off: u64, buf: &mut [u8]) {
        self.check_range(off, buf.len());
        for (i, b) in buf.iter_mut().enumerate() {
            *b = self.live[off as usize + i].load(Ordering::Relaxed);
        }
    }

    /// Enqueues the cache lines covering `off..off+len` for write-back
    /// (`clwb`). Durability only takes effect at the next
    /// [`pfence`](NvDimm::pfence)/[`psync`](NvDimm::psync) on *this thread*.
    #[cfg_attr(feature = "pmcheck", track_caller)]
    pub fn pwb(&self, off: u64, len: usize) {
        if len == 0 {
            return;
        }
        self.check_range(off, len);
        let first = off / CACHE_LINE;
        let last = (off + len as u64 - 1) / CACHE_LINE;
        #[cfg(feature = "pmcheck")]
        {
            let site = crate::pmcheck::Site::here(std::panic::Location::caller());
            let redundant = self.pm.on_pwb(first, last, site, |line| {
                let word = (line / 64) as usize;
                let bit = 1u64 << (line % 64);
                self.dirty[word].load(Ordering::Relaxed) & bit != 0
            });
            if redundant > 0 {
                self.stats.redundant_pwb_lines.fetch_add(redundant, Ordering::Relaxed);
            }
        }
        PENDING_FLUSHES.with(|p| {
            let mut map = p.borrow_mut();
            let queue = map.entry(self.id).or_default();
            queue.extend(first..=last);
        });
    }

    fn drain_pending(&self, clock: &ActorClock) -> usize {
        let mut lines = PENDING_FLUSHES.with(|p| {
            let mut map = p.borrow_mut();
            map.remove(&self.id).unwrap_or_default()
        });
        if lines.is_empty() {
            return 0;
        }
        lines.sort_unstable();
        lines.dedup();
        if let Some(durable) = &self.durable {
            let mut image = durable.lock();
            for &line in &lines {
                let start = (line * CACHE_LINE) as usize;
                let end = (start + CACHE_LINE as usize).min(self.live.len());
                for i in start..end {
                    image[i] = self.live[i].load(Ordering::Relaxed);
                }
            }
        }
        for &line in &lines {
            let word = (line / 64) as usize;
            let bit = 1u64 << (line % 64);
            self.dirty[word].fetch_and(!bit, Ordering::Relaxed);
        }
        let n = lines.len();
        self.stats.lines_flushed.fetch_add(n as u64, Ordering::Relaxed);
        let service = self.profile.write_bandwidth.time_for(n as u64 * CACHE_LINE);
        clock.advance(service);
        n
    }

    /// Store fence: drains this thread's pending `pwb`s to durable media and
    /// orders them before subsequent stores (`sfence`).
    pub fn pfence(&self, clock: &ActorClock) {
        #[cfg(feature = "pmcheck")]
        self.pm_fence_hook();
        self.stats.fences.fetch_add(1, Ordering::Relaxed);
        self.drain_pending(clock);
        clock.advance(self.profile.fence_latency);
    }

    /// Like [`pfence`](NvDimm::pfence) but additionally waits for the media
    /// drain; required for durable linearizability (paper Algorithm 1, l.27).
    pub fn psync(&self, clock: &ActorClock) {
        #[cfg(feature = "pmcheck")]
        self.pm_fence_hook();
        self.stats.drains.fetch_add(1, Ordering::Relaxed);
        self.drain_pending(clock);
        clock.advance(self.profile.fence_latency + self.profile.drain_latency);
    }

    /// Shadow-state transition for any fence flavour: flags fences that had
    /// nothing queued (pure latency) and advances this thread's epoch.
    #[cfg(feature = "pmcheck")]
    fn pm_fence_hook(&self) {
        let empty = PENDING_FLUSHES.with(|p| p.borrow().get(&self.id).is_none_or(|q| q.is_empty()));
        if empty {
            self.stats.redundant_fences.fetch_add(1, Ordering::Relaxed);
        }
        self.pm.on_fence();
    }

    /// Checked [`pfence`](NvDimm::pfence): asserts (under `pmcheck`) that
    /// every store this thread made has already been `pwb`'d, i.e. the fence
    /// really covers the payload it is ordering. Use at protocol points
    /// whose contract is "all prior stores are write-back-queued"; plain
    /// `pfence` remains available for fences without that contract.
    #[cfg_attr(feature = "pmcheck", track_caller)]
    pub fn persist_fence(&self, clock: &ActorClock) {
        #[cfg(feature = "pmcheck")]
        {
            let site = crate::pmcheck::Site::here(std::panic::Location::caller());
            if let Some(msg) = self.pm.check_barrier(self.id, "persist_fence", site) {
                panic!("{msg}");
            }
        }
        self.pfence(clock);
    }

    /// Checked [`psync`](NvDimm::psync); same contract as
    /// [`persist_fence`](NvDimm::persist_fence).
    #[cfg_attr(feature = "pmcheck", track_caller)]
    pub fn persist_barrier(&self, clock: &ActorClock) {
        #[cfg(feature = "pmcheck")]
        {
            let site = crate::pmcheck::Site::here(std::panic::Location::caller());
            if let Some(msg) = self.pm.check_barrier(self.id, "persist_barrier", site) {
                panic!("{msg}");
            }
        }
        self.psync(clock);
    }

    /// Publishes an 8-byte little-endian commit word: store + `pwb` of its
    /// line. Under `pmcheck` this is the annotated *publish* point of the
    /// durability protocol (paper Algorithm 1: pwb payload, fence, then
    /// commit) and asserts that on this thread nothing is still Dirty and no
    /// `pwb` is un-fenced — otherwise the commit word is being published
    /// before the fence covering its payload.
    #[cfg_attr(feature = "pmcheck", track_caller)]
    pub fn commit_store(&self, off: u64, value: u64, clock: &ActorClock) {
        #[cfg(feature = "pmcheck")]
        let site = crate::pmcheck::Site::here(std::panic::Location::caller());
        #[cfg(feature = "pmcheck")]
        if let Some(msg) = self.pm.check_commit(self.id, off, off / CACHE_LINE, site) {
            panic!("{msg}");
        }
        self.write(off, &value.to_le_bytes(), clock);
        self.pwb(off, 8);
        self.stats.commit_stores.fetch_add(1, Ordering::Relaxed);
        #[cfg(feature = "pmcheck")]
        self.pm.register_commit(off / CACHE_LINE, site);
    }

    /// Violations recorded by the `pmcheck` shadow checker on this DIMM.
    ///
    /// Violations also panic at the offending call site; this registry is
    /// for end-of-test auditing (and for tests that catch the panic).
    #[cfg(feature = "pmcheck")]
    pub fn pm_violations(&self) -> Vec<String> {
        self.pm.violations()
    }

    /// Convenience: `write` + `pwb` over the same range.
    #[cfg_attr(feature = "pmcheck", track_caller)]
    pub fn write_and_pwb(&self, off: u64, data: &[u8], clock: &ActorClock) {
        self.write(off, data, clock);
        self.pwb(off, data.len());
    }

    /// Produces the post-crash memory image: the durable image, with each
    /// still-dirty line independently "evicted" (persisted anyway) with the
    /// profile's eviction probability, using `seed` for reproducibility.
    ///
    /// # Panics
    ///
    /// Panics if the profile disabled durability tracking.
    pub fn crash_image(&self, seed: u64) -> Vec<u8> {
        #[cfg(feature = "pmcheck")]
        {
            let found = self.pm.check_crash(self.id);
            if !found.is_empty() {
                panic!("{}", found.join("\n"));
            }
        }
        let durable = self
            .durable
            .as_ref()
            .expect("crash semantics unavailable: durability tracking disabled");
        let mut image = durable.lock().to_vec();
        let p = self.profile.eviction_probability;
        if p > 0.0 {
            let mut rng = StdRng::seed_from_u64(seed);
            let lines = self.len().div_ceil(CACHE_LINE);
            for line in 0..lines {
                let word = (line / 64) as usize;
                let bit = 1u64 << (line % 64);
                if self.dirty[word].load(Ordering::Relaxed) & bit != 0 && rng.gen_bool(p) {
                    let start = (line * CACHE_LINE) as usize;
                    let end = (start + CACHE_LINE as usize).min(self.live.len());
                    for (dst, src) in image[start..end].iter_mut().zip(&self.live[start..end]) {
                        *dst = src.load(Ordering::Relaxed);
                    }
                }
            }
        }
        image
    }

    /// Simulates a power failure followed by reboot: returns a fresh DIMM
    /// whose content is exactly what was durable (deterministic, seed 0).
    ///
    /// # Panics
    ///
    /// Panics if the profile disabled durability tracking.
    pub fn crash_and_restart(&self) -> NvDimm {
        let image = self.crash_image(0);
        Self::from_image(&image, self.profile.clone())
    }

    /// Simulates a crash with a seeded eviction draw (see
    /// [`crash_image`](NvDimm::crash_image)).
    pub fn crash_and_restart_seeded(&self, seed: u64) -> NvDimm {
        let image = self.crash_image(seed);
        Self::from_image(&image, self.profile.clone())
    }

    /// Alias for [`crash_and_restart`](NvDimm::crash_and_restart); reads as
    /// "crash" at call sites.
    pub fn crash(&self) -> NvDimm {
        self.crash_and_restart()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock() -> ActorClock {
        ActorClock::new()
    }

    #[test]
    fn write_then_read_round_trips() {
        let c = clock();
        let d = NvDimm::new(1024, NvmmProfile::instant());
        d.write(100, b"abcdef", &c);
        let mut buf = [0u8; 6];
        d.read(100, &mut buf, &c);
        assert_eq!(&buf, b"abcdef");
    }

    #[test]
    fn unflushed_write_is_lost_on_crash() {
        let c = clock();
        let d = NvDimm::new(1024, NvmmProfile::instant());
        d.write(0, b"volatile!", &c);
        let r = d.crash_and_restart();
        let mut buf = [0u8; 9];
        r.read_cached(0, &mut buf);
        assert_eq!(&buf, &[0u8; 9], "unflushed data must not survive");
    }

    #[test]
    fn pwb_without_fence_is_still_volatile() {
        let c = clock();
        let d = NvDimm::new(1024, NvmmProfile::instant());
        d.write(0, b"queued", &c);
        d.pwb(0, 6);
        let r = d.crash_and_restart();
        let mut buf = [0u8; 6];
        r.read_cached(0, &mut buf);
        assert_eq!(&buf, &[0u8; 6]);
    }

    #[test]
    fn pwb_plus_fence_is_durable() {
        let c = clock();
        let d = NvDimm::new(1024, NvmmProfile::instant());
        d.write(0, b"durable", &c);
        d.pwb(0, 7);
        d.pfence(&c);
        let r = d.crash_and_restart();
        let mut buf = [0u8; 7];
        r.read_cached(0, &mut buf);
        assert_eq!(&buf, b"durable");
    }

    #[test]
    fn fence_only_persists_flushed_lines() {
        let c = clock();
        let d = NvDimm::new(4096, NvmmProfile::instant());
        // Two writes on different cache lines; only the first is pwb'd.
        d.write(0, b"first", &c);
        d.write(2048, b"second", &c);
        d.pwb(0, 5);
        d.pfence(&c);
        let r = d.crash_and_restart();
        let mut a = [0u8; 5];
        let mut b = [0u8; 6];
        r.read_cached(0, &mut a);
        r.read_cached(2048, &mut b);
        assert_eq!(&a, b"first");
        assert_eq!(&b, &[0u8; 6]);
    }

    #[test]
    fn fences_are_per_thread() {
        let c = clock();
        let d = std::sync::Arc::new(NvDimm::new(1024, NvmmProfile::instant()));
        d.write(0, b"mine", &c);
        d.pwb(0, 4);
        // A fence on a different thread must not drain this thread's queue.
        let d2 = std::sync::Arc::clone(&d);
        std::thread::spawn(move || {
            let c2 = ActorClock::new();
            d2.pfence(&c2);
        })
        .join()
        .unwrap();
        let r = d.crash_and_restart();
        let mut buf = [0u8; 4];
        r.read_cached(0, &mut buf);
        assert_eq!(&buf, &[0u8; 4], "other thread's fence must not persist our lines");
    }

    #[test]
    fn rewrite_after_flush_restores_old_value_on_crash() {
        let c = clock();
        let d = NvDimm::new(1024, NvmmProfile::instant());
        d.write(0, b"v1", &c);
        d.pwb(0, 2);
        d.psync(&c);
        d.write(0, b"v2", &c); // not flushed
        let r = d.crash_and_restart();
        let mut buf = [0u8; 2];
        r.read_cached(0, &mut buf);
        assert_eq!(&buf, b"v1");
    }

    #[test]
    fn eviction_probability_one_persists_everything() {
        let c = clock();
        let prof = NvmmProfile::instant().with_eviction_probability(1.0);
        let d = NvDimm::new(1024, prof);
        d.write(0, b"evicted", &c);
        let r = d.crash_and_restart();
        let mut buf = [0u8; 7];
        r.read_cached(0, &mut buf);
        assert_eq!(&buf, b"evicted");
    }

    #[test]
    fn crash_image_is_seed_deterministic() {
        let c = clock();
        let prof = NvmmProfile::instant().with_eviction_probability(0.5);
        let d = NvDimm::new(8192, prof);
        for i in 0..32 {
            d.write(i * 256, &[i as u8 + 1; 64], &c);
        }
        assert_eq!(d.crash_image(7), d.crash_image(7));
        // Different seeds should (overwhelmingly) differ for 32 dirty lines.
        assert_ne!(d.crash_image(7), d.crash_image(8));
    }

    #[test]
    fn write_charges_store_time_and_flush_charges_media_time() {
        let c = clock();
        let d = NvDimm::new(1 << 20, NvmmProfile::optane());
        d.write(0, &[7u8; 4096], &c);
        let after_store = c.now();
        assert!(after_store > SimTime::ZERO);
        d.pwb(0, 4096);
        d.psync(&c);
        let after_sync = c.now();
        // Media flush of 64 lines dominates the store cost.
        assert!(after_sync - after_store > (after_store) * 2);
    }

    #[test]
    fn stats_accumulate() {
        let c = clock();
        let d = NvDimm::new(4096, NvmmProfile::instant());
        d.write(0, &[1; 128], &c);
        d.pwb(0, 128);
        d.pfence(&c);
        let mut buf = [0u8; 64];
        d.read(0, &mut buf, &c);
        assert_eq!(d.stats().bytes_stored.load(Ordering::Relaxed), 128);
        assert_eq!(d.stats().lines_flushed.load(Ordering::Relaxed), 2);
        assert_eq!(d.stats().fences.load(Ordering::Relaxed), 1);
        assert_eq!(d.stats().bytes_read.load(Ordering::Relaxed), 64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_write_panics() {
        let c = clock();
        let d = NvDimm::new(64, NvmmProfile::instant());
        d.write(60, &[0; 8], &c);
    }

    #[test]
    #[should_panic(expected = "durability tracking disabled")]
    fn crash_without_tracking_panics() {
        let d = NvDimm::new(64, NvmmProfile::instant().without_durability_tracking());
        let _ = d.crash_and_restart();
    }
}

#[cfg(all(test, feature = "pmcheck"))]
mod pmcheck_tests {
    use super::*;

    fn setup() -> (ActorClock, NvDimm) {
        (ActorClock::new(), NvDimm::new(4096, NvmmProfile::instant()))
    }

    /// Runs `f` on a fresh thread so this thread's pending pwb queue and
    /// shadow attributions can't leak between tests.
    fn isolated(f: impl FnOnce() + Send + 'static) {
        std::thread::spawn(f).join().unwrap();
    }

    #[test]
    fn protocol_in_order_is_clean() {
        isolated(|| {
            let (c, d) = setup();
            d.write(0, &[7u8; 128], &c);
            d.pwb(0, 128);
            d.persist_fence(&c);
            d.commit_store(256, 1, &c);
            d.persist_barrier(&c);
            assert!(d.pm_violations().is_empty());
            let _ = d.crash_image(0);
        });
    }

    #[test]
    fn group_commit_publishing_several_words_is_clean() {
        // The multi-leader doorbell path (`commit_batch`) publishes one
        // commit word per group between a single fence and the trailing
        // barrier. The sibling commit words' own queued `pwb`s are not
        // unfenced payload and must not be flagged.
        isolated(|| {
            let (c, d) = setup();
            d.write(0, &[7u8; 128], &c);
            d.pwb(0, 128);
            d.persist_fence(&c);
            d.commit_store(256, 1, &c);
            d.commit_store(512, 2, &c);
            d.commit_store(768, 3, &c);
            d.persist_barrier(&c);
            assert!(d.pm_violations().is_empty());
        });
    }

    #[test]
    fn payload_pwb_on_former_commit_line_still_flags() {
        // The commit-origin exemption is per queued entry, not per line: a
        // later *payload* flush over a line that once held a commit word is
        // ordinary unfenced payload again.
        isolated(|| {
            let (c, d) = setup();
            d.commit_store(256, 1, &c);
            d.persist_barrier(&c);
            d.write(256, &[4u8; 8], &c);
            d.pwb(256, 8); // plain payload pwb overwrites the commit flag
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                d.commit_store(512, 2, &c);
            }))
            .unwrap_err();
            let msg = err.downcast_ref::<String>().unwrap();
            assert!(msg.contains("stored before the fence"), "{msg}");
        });
    }

    #[test]
    fn commit_before_fence_is_flagged() {
        isolated(|| {
            let (c, d) = setup();
            d.write(0, &[7u8; 64], &c);
            d.pwb(0, 64);
            // No fence: the payload write-back is still queued.
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                d.commit_store(256, 1, &c);
            }))
            .unwrap_err();
            let msg = err.downcast_ref::<String>().unwrap();
            assert!(msg.contains("commit_store"), "{msg}");
            assert!(msg.contains("stored before the fence"), "{msg}");
            assert!(msg.contains("line 0x0"), "{msg}");
            assert_eq!(d.pm_violations().len(), 1);
        });
    }

    #[test]
    fn commit_with_unflushed_payload_is_flagged() {
        isolated(|| {
            let (c, d) = setup();
            d.write(128, &[9u8; 64], &c); // no pwb at all
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                d.commit_store(256, 1, &c);
            }))
            .unwrap_err();
            let msg = err.downcast_ref::<String>().unwrap();
            assert!(msg.contains("still Dirty"), "{msg}");
            assert!(msg.contains("line 0x2"), "{msg}");
        });
    }

    #[test]
    fn barrier_with_dirty_store_is_flagged() {
        isolated(|| {
            let (c, d) = setup();
            d.write(0, &[1u8; 8], &c);
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                d.persist_fence(&c);
            }))
            .unwrap_err();
            let msg = err.downcast_ref::<String>().unwrap();
            assert!(msg.contains("persist_fence"), "{msg}");
            assert!(msg.contains("skipped pwb"), "{msg}");
        });
    }

    #[test]
    fn dirty_tracking_is_per_thread() {
        // Another thread's un-flushed store must not trip this thread's
        // barrier: the fence contract is per-thread, like the hardware.
        let (_c, d) = setup();
        let d = std::sync::Arc::new(d);
        let d2 = std::sync::Arc::clone(&d);
        std::thread::spawn(move || {
            let c2 = ActorClock::new();
            d2.write(512, &[3u8; 16], &c2);
        })
        .join()
        .unwrap();
        std::thread::spawn(move || {
            let c2 = ActorClock::new();
            d.write(0, &[1u8; 8], &c2);
            d.pwb(0, 8);
            d.persist_fence(&c2); // must not flag line 512/64
            d.commit_store(64, 1, &c2);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn redundant_pwb_and_fence_are_counted() {
        isolated(|| {
            let (c, d) = setup();
            d.write(0, &[5u8; 8], &c);
            d.pwb(0, 8);
            d.pwb(0, 8); // same line, no new store: redundant
            assert_eq!(d.stats().redundant_pwb_lines.load(Ordering::Relaxed), 1);
            d.pfence(&c);
            d.pfence(&c); // nothing queued: redundant
            assert_eq!(d.stats().redundant_fences.load(Ordering::Relaxed), 1);
            d.pwb(64, 8); // clean line never stored: redundant
            assert_eq!(d.stats().redundant_pwb_lines.load(Ordering::Relaxed), 2);
            assert!(d.pm_violations().is_empty());
        });
    }

    #[test]
    fn rewrite_after_pwb_is_not_redundant() {
        isolated(|| {
            let (c, d) = setup();
            d.write(0, &[5u8; 8], &c);
            d.pwb(0, 8);
            d.write(0, &[6u8; 8], &c); // line re-dirtied
            d.pwb(0, 8); // needed on real hardware: not redundant
            assert_eq!(d.stats().redundant_pwb_lines.load(Ordering::Relaxed), 0);
        });
    }

    #[test]
    fn crash_with_redirtied_commit_word_is_flagged() {
        isolated(|| {
            let (c, d) = setup();
            d.commit_store(0, 1, &c);
            d.persist_barrier(&c);
            d.commit_store(0, 2, &c);
            // Rewrite the published word with a plain store, no pwb, then
            // crash: eviction could persist the publish without its payload.
            d.write(0, &[9u8; 8], &c);
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = d.crash_image(0);
            }))
            .unwrap_err();
            let msg = err.downcast_ref::<String>().unwrap();
            assert!(msg.contains("crash with commit word"), "{msg}");
        });
    }
}
