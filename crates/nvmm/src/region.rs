use std::sync::Arc;

use simclock::ActorClock;

use crate::NvDimm;

/// A contiguous window of an [`NvDimm`].
///
/// Regions let several independent consumers share one module — the paper's
/// multi-application deployment splits a DIMM into per-instance DAX files
/// (§III "Multi-application"); `NvRegion` is the equivalent here. All offsets
/// are relative to the region base.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use nvmm::{NvDimm, NvmmProfile, NvRegion};
/// use simclock::ActorClock;
///
/// let clock = ActorClock::new();
/// let dimm = Arc::new(NvDimm::new(1 << 16, NvmmProfile::instant()));
/// let a = NvRegion::new(Arc::clone(&dimm), 0, 1 << 15);
/// let b = NvRegion::new(dimm, 1 << 15, 1 << 15);
/// a.write(0, b"left", &clock);
/// b.write(0, b"right", &clock);
/// let mut buf = [0u8; 5];
/// b.read_cached(0, &mut buf);
/// assert_eq!(&buf, b"right");
/// ```
#[derive(Debug, Clone)]
pub struct NvRegion {
    dimm: Arc<NvDimm>,
    base: u64,
    len: u64,
}

impl NvRegion {
    /// Creates a region over `dimm[base..base+len]`.
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the DIMM capacity.
    pub fn new(dimm: Arc<NvDimm>, base: u64, len: u64) -> Self {
        assert!(
            base.checked_add(len).is_some_and(|end| end <= dimm.len()),
            "region {base}+{len} exceeds DIMM of {} bytes",
            dimm.len()
        );
        NvRegion { dimm, base, len }
    }

    /// A region covering an entire DIMM.
    pub fn whole(dimm: Arc<NvDimm>) -> Self {
        let len = dimm.len();
        NvRegion { dimm, base: 0, len }
    }

    /// Region length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing DIMM.
    pub fn dimm(&self) -> &Arc<NvDimm> {
        &self.dimm
    }

    /// Absolute base offset inside the DIMM.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// A sub-window of this region.
    ///
    /// # Panics
    ///
    /// Panics if the sub-window exceeds this region.
    pub fn sub_region(&self, off: u64, len: u64) -> NvRegion {
        assert!(
            off.checked_add(len).is_some_and(|end| end <= self.len),
            "sub-region {off}+{len} exceeds region of {} bytes",
            self.len
        );
        NvRegion { dimm: Arc::clone(&self.dimm), base: self.base + off, len }
    }

    fn abs(&self, off: u64, len: usize) -> u64 {
        assert!(
            off.checked_add(len as u64).is_some_and(|end| end <= self.len),
            "region access {off}+{len} exceeds region of {} bytes",
            self.len
        );
        self.base + off
    }

    /// See [`NvDimm::write`].
    #[cfg_attr(feature = "pmcheck", track_caller)]
    pub fn write(&self, off: u64, data: &[u8], clock: &ActorClock) {
        self.dimm.write(self.abs(off, data.len()), data, clock);
    }

    /// See [`NvDimm::read`].
    pub fn read(&self, off: u64, buf: &mut [u8], clock: &ActorClock) {
        self.dimm.read(self.abs(off, buf.len()), buf, clock);
    }

    /// See [`NvDimm::read_cached`].
    pub fn read_cached(&self, off: u64, buf: &mut [u8]) {
        self.dimm.read_cached(self.abs(off, buf.len()), buf);
    }

    /// See [`NvDimm::pwb`].
    #[cfg_attr(feature = "pmcheck", track_caller)]
    pub fn pwb(&self, off: u64, len: usize) {
        self.dimm.pwb(self.abs(off, len), len);
    }

    /// See [`NvDimm::pfence`].
    pub fn pfence(&self, clock: &ActorClock) {
        self.dimm.pfence(clock);
    }

    /// See [`NvDimm::psync`].
    pub fn psync(&self, clock: &ActorClock) {
        self.dimm.psync(clock);
    }

    /// See [`NvDimm::write_and_pwb`].
    #[cfg_attr(feature = "pmcheck", track_caller)]
    pub fn write_and_pwb(&self, off: u64, data: &[u8], clock: &ActorClock) {
        self.dimm.write_and_pwb(self.abs(off, data.len()), data, clock);
    }

    /// See [`NvDimm::persist_fence`] — a checked [`pfence`](NvRegion::pfence)
    /// asserting (under `pmcheck`) that every store this thread made has
    /// already been `pwb`'d.
    #[cfg_attr(feature = "pmcheck", track_caller)]
    pub fn persist_fence(&self, clock: &ActorClock) {
        self.dimm.persist_fence(clock);
    }

    /// See [`NvDimm::persist_barrier`] — a checked [`psync`](NvRegion::psync)
    /// with the same contract as [`persist_fence`](NvRegion::persist_fence).
    #[cfg_attr(feature = "pmcheck", track_caller)]
    pub fn persist_barrier(&self, clock: &ActorClock) {
        self.dimm.persist_barrier(clock);
    }

    /// See [`NvDimm::commit_store`] — the annotated publish point of the
    /// durability protocol (8-byte little-endian store + `pwb`).
    #[cfg_attr(feature = "pmcheck", track_caller)]
    pub fn commit_store(&self, off: u64, value: u64, clock: &ActorClock) {
        self.dimm.commit_store(self.abs(off, 8), value, clock);
    }

    /// Every persistency violation recorded against this region's DIMM.
    #[cfg(feature = "pmcheck")]
    pub fn pm_violations(&self) -> Vec<String> {
        self.dimm.pm_violations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NvmmProfile;

    fn setup() -> (ActorClock, Arc<NvDimm>) {
        (ActorClock::new(), Arc::new(NvDimm::new(4096, NvmmProfile::instant())))
    }

    #[test]
    fn offsets_are_relative() {
        let (c, dimm) = setup();
        let r = NvRegion::new(Arc::clone(&dimm), 1024, 1024);
        r.write(0, b"xyz", &c);
        let mut buf = [0u8; 3];
        dimm.read_cached(1024, &mut buf);
        assert_eq!(&buf, b"xyz");
    }

    #[test]
    fn sub_region_nests() {
        let (c, dimm) = setup();
        let r = NvRegion::new(dimm, 1024, 2048).sub_region(512, 512);
        assert_eq!(r.base(), 1536);
        r.write(0, b"nested", &c);
        let mut buf = [0u8; 6];
        r.read_cached(0, &mut buf);
        assert_eq!(&buf, b"nested");
    }

    #[test]
    fn durability_through_region() {
        let (c, dimm) = setup();
        let r = NvRegion::new(Arc::clone(&dimm), 2048, 1024);
        r.write_and_pwb(0, b"keep", &c);
        r.psync(&c);
        let restarted = dimm.crash_and_restart();
        let mut buf = [0u8; 4];
        restarted.read_cached(2048, &mut buf);
        assert_eq!(&buf, b"keep");
    }

    #[test]
    #[should_panic(expected = "exceeds region")]
    fn out_of_region_access_panics() {
        let (c, dimm) = setup();
        let r = NvRegion::new(dimm, 0, 128);
        r.write(120, &[0u8; 16], &c);
    }

    #[test]
    #[should_panic(expected = "exceeds DIMM")]
    fn oversized_region_panics() {
        let (_c, dimm) = setup();
        let _ = NvRegion::new(dimm, 4000, 1024);
    }

    #[test]
    fn whole_covers_dimm() {
        let (_c, dimm) = setup();
        let r = NvRegion::whole(Arc::clone(&dimm));
        assert_eq!(r.len(), dimm.len());
        assert_eq!(r.base(), 0);
    }
}
