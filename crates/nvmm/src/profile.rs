use simclock::{Bandwidth, SimTime};

/// Latency/bandwidth model of an NVMM module.
///
/// The defaults in [`NvmmProfile::optane`] are calibrated so that a 4 KiB
/// NVCache log entry (store + flush of 64 cache lines + fences) costs ≈7µs,
/// matching the paper's observed pre-saturation FIO throughput of ≈550 MiB/s
/// (paper Fig. 5) on first-generation Optane DIMMs.
#[derive(Debug, Clone)]
pub struct NvmmProfile {
    /// Sustained media write bandwidth charged when lines are drained.
    pub write_bandwidth: Bandwidth,
    /// Media read bandwidth for bulk reads.
    pub read_bandwidth: Bandwidth,
    /// Fixed media read latency per read operation.
    pub read_latency: SimTime,
    /// Cost of writing into the CPU cache (per byte, expressed as bandwidth).
    pub store_bandwidth: Bandwidth,
    /// Fixed cost of a `pfence`.
    pub fence_latency: SimTime,
    /// Additional fixed cost of a `psync` (drain) over a `pfence`.
    pub drain_latency: SimTime,
    /// Whether to maintain the durable image for crash testing. Benchmarks
    /// can turn this off to halve memory footprint; [`crate::NvDimm::crash`]
    /// then panics.
    pub track_durability: bool,
    /// Probability that a dirty-but-unflushed line happens to have been
    /// evicted (and therefore persisted) by the time of a crash. 0 models the
    /// adversarial "everything volatile is lost" case; property tests use
    /// intermediate values to explore torn states.
    pub eviction_probability: f64,
}

impl NvmmProfile {
    /// Optane DC PMM-like profile (see struct docs for calibration).
    pub fn optane() -> Self {
        NvmmProfile {
            write_bandwidth: Bandwidth::mib_per_sec(750.0),
            read_bandwidth: Bandwidth::gib_per_sec(6.0),
            read_latency: SimTime::from_nanos(300),
            store_bandwidth: Bandwidth::gib_per_sec(20.0),
            fence_latency: SimTime::from_nanos(100),
            drain_latency: SimTime::from_nanos(400),
            track_durability: true,
            eviction_probability: 0.0,
        }
    }

    /// A zero-latency profile for purely functional tests.
    pub fn instant() -> Self {
        NvmmProfile {
            write_bandwidth: Bandwidth::gib_per_sec(1024.0),
            read_bandwidth: Bandwidth::gib_per_sec(1024.0),
            read_latency: SimTime::ZERO,
            store_bandwidth: Bandwidth::gib_per_sec(1024.0),
            fence_latency: SimTime::ZERO,
            drain_latency: SimTime::ZERO,
            track_durability: true,
            eviction_probability: 0.0,
        }
    }

    /// Disables the durable shadow image (halves memory; crash unsupported).
    pub fn without_durability_tracking(mut self) -> Self {
        self.track_durability = false;
        self
    }

    /// Sets the crash-time eviction probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn with_eviction_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.eviction_probability = p;
        self
    }
}

impl Default for NvmmProfile {
    fn default() -> Self {
        Self::optane()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optane_entry_cost_matches_calibration() {
        let p = NvmmProfile::optane();
        // 4 KiB flush + store + two fences should land in the 5..9µs window
        // that yields the paper's ~550 MiB/s single-thread log throughput.
        let cost = p.write_bandwidth.time_for(4096)
            + p.store_bandwidth.time_for(4096)
            + p.fence_latency
            + p.drain_latency;
        assert!(cost >= SimTime::from_micros(5), "too fast: {cost}");
        assert!(cost <= SimTime::from_micros(9), "too slow: {cost}");
    }

    #[test]
    fn instant_profile_is_free() {
        let p = NvmmProfile::instant();
        assert_eq!(p.fence_latency, SimTime::ZERO);
        assert!(p.write_bandwidth.time_for(1 << 20) <= SimTime::from_micros(1));
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn bad_probability_panics() {
        let _ = NvmmProfile::optane().with_eviction_probability(1.5);
    }
}
