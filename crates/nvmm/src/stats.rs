use std::sync::atomic::{AtomicU64, Ordering};

/// Operation counters for one [`NvDimm`](crate::NvDimm).
///
/// All fields are atomically updated; read them with `Ordering::Relaxed`.
#[derive(Debug, Default)]
pub struct NvmmStats {
    /// Bytes written into the live image.
    pub bytes_stored: AtomicU64,
    /// Bytes read with charged (media) reads.
    pub bytes_read: AtomicU64,
    /// Cache lines drained to durable media.
    pub lines_flushed: AtomicU64,
    /// `pfence` count.
    pub fences: AtomicU64,
    /// `psync` count.
    pub drains: AtomicU64,
    /// Commit-word publishes via [`commit_store`](crate::NvDimm::commit_store).
    pub commit_stores: AtomicU64,
    /// Redundant `pwb` lines (already queued by this thread, or clean);
    /// counted only with the `pmcheck` feature, otherwise stays 0.
    pub redundant_pwb_lines: AtomicU64,
    /// Fences issued with an empty write-back queue (pure latency);
    /// counted only with the `pmcheck` feature, otherwise stays 0.
    pub redundant_fences: AtomicU64,
}

impl NvmmStats {
    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> NvmmStatsSnapshot {
        NvmmStatsSnapshot {
            bytes_stored: self.bytes_stored.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            lines_flushed: self.lines_flushed.load(Ordering::Relaxed),
            fences: self.fences.load(Ordering::Relaxed),
            drains: self.drains.load(Ordering::Relaxed),
            commit_stores: self.commit_stores.load(Ordering::Relaxed),
            redundant_pwb_lines: self.redundant_pwb_lines.load(Ordering::Relaxed),
            redundant_fences: self.redundant_fences.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value snapshot of [`NvmmStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NvmmStatsSnapshot {
    /// Bytes written into the live image.
    pub bytes_stored: u64,
    /// Bytes read with charged (media) reads.
    pub bytes_read: u64,
    /// Cache lines drained to durable media.
    pub lines_flushed: u64,
    /// `pfence` count.
    pub fences: u64,
    /// `psync` count.
    pub drains: u64,
    /// Commit-word publishes via [`commit_store`](crate::NvDimm::commit_store).
    pub commit_stores: u64,
    /// Redundant `pwb` lines (counted only under `pmcheck`).
    pub redundant_pwb_lines: u64,
    /// Fences issued with nothing queued (counted only under `pmcheck`).
    pub redundant_fences: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters() {
        let s = NvmmStats::default();
        s.bytes_stored.store(10, Ordering::Relaxed);
        s.fences.store(3, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.bytes_stored, 10);
        assert_eq!(snap.fences, 3);
        assert_eq!(snap.drains, 0);
    }
}
