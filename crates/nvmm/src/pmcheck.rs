//! Persistency-ordering shadow checker (feature `pmcheck`).
//!
//! Tracks, per DIMM, a shadow state machine over cache lines mirroring the
//! simulator's own durability model (Dirty → WrittenBack → Persisted, with
//! write-back queues and fences both per-thread, as in `dimm.rs`):
//!
//! * a store moves its lines to **Dirty** and records the storing thread and
//!   call site;
//! * `pwb` moves the covered lines to **WrittenBack** (they leave the Dirty
//!   set and sit in the flushing thread's pending queue);
//! * `pfence`/`psync` move this thread's WrittenBack lines to **Persisted**
//!   and advance the thread's fence epoch.
//!
//! On top of that state the checked APIs ([`NvDimm::commit_store`],
//! [`NvDimm::persist_fence`], [`NvDimm::persist_barrier`]) assert the
//! NVCache durability protocol — *pwb the payload, fence, then publish the
//! commit word* — and violations panic with the offending op, line address
//! and owning call site, as well as being recorded per DIMM for
//! post-mortem inspection via [`NvDimm::pm_violations`].
//!
//! Everything in this module is compiled only with `--features pmcheck`;
//! without it the checked APIs degrade to their plain equivalents.
//!
//! [`NvDimm::commit_store`]: crate::NvDimm::commit_store
//! [`NvDimm::persist_fence`]: crate::NvDimm::persist_fence
//! [`NvDimm::persist_barrier`]: crate::NvDimm::persist_barrier
//! [`NvDimm::pm_violations`]: crate::NvDimm::pm_violations

use std::collections::HashMap;
use std::panic::Location;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Stable small integer identifying the calling thread (thread ids are
/// per-process and monotone; `std::thread::ThreadId` has no stable integer
/// form on stable Rust).
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// The calling thread's checker id.
pub(crate) fn tid() -> u64 {
    TID.with(|t| *t)
}

/// Where a tracked operation happened (a `#[track_caller]` location).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Site {
    pub file: &'static str,
    pub line: u32,
}

impl Site {
    pub fn here(loc: &'static Location<'static>) -> Self {
        Site { file: loc.file(), line: loc.line() }
    }
}

impl std::fmt::Display for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.file, self.line)
    }
}

/// A store whose lines are still Dirty (no `pwb` has covered them yet).
#[derive(Debug, Clone, Copy)]
struct DirtyStore {
    tid: u64,
    site: Site,
}

/// A `pwb` whose lines are WrittenBack but not yet fenced by its thread.
#[derive(Debug, Clone, Copy)]
struct QueuedPwb {
    site: Site,
    /// The queued flush is a commit word's own `pwb` (issued inside
    /// [`commit_store`]): a group commit may publish several commit words
    /// between one fence and the trailing barrier, so these entries are not
    /// unfenced *payload* and must not trip [`PmShadow::check_commit`]. A
    /// later plain `pwb` over the same line overwrites the flag.
    ///
    /// [`commit_store`]: crate::NvDimm::commit_store
    commit: bool,
}

/// A commit-word store performed through [`commit_store`], awaiting the
/// fence that makes it durable.
///
/// [`commit_store`]: crate::NvDimm::commit_store
#[derive(Debug, Clone, Copy)]
struct PendingCommit {
    line: u64,
    tid: u64,
    site: Site,
}

/// Per-DIMM shadow state. One instance per [`NvDimm`](crate::NvDimm) —
/// never global, so independent mounts in one test process cannot
/// cross-contaminate each other's reports.
#[derive(Debug, Default)]
pub(crate) struct PmShadow {
    state: Mutex<PmState>,
}

#[derive(Debug, Default)]
struct PmState {
    /// line → most recent store not yet covered by any `pwb`.
    dirty: HashMap<u64, DirtyStore>,
    /// (tid, line) → `pwb` queued by `tid`, not yet fenced by `tid`.
    written_back: HashMap<(u64, u64), QueuedPwb>,
    /// Commit-word stores awaiting their covering fence.
    commits: Vec<PendingCommit>,
    /// Violation reports, in detection order.
    violations: Vec<String>,
}

impl PmShadow {
    /// A store: lines become Dirty, attributed to the calling thread.
    pub fn on_write(&self, first: u64, last: u64, site: Site) {
        let me = tid();
        let mut st = self.state.lock();
        for line in first..=last {
            st.dirty.insert(line, DirtyStore { tid: me, site });
        }
    }

    /// A `pwb`: covered lines leave Dirty and join the calling thread's
    /// WrittenBack set. Returns the number of *redundant* lines — lines
    /// that were neither Dirty nor newly queued (already queued by this
    /// thread, or clean), i.e. pure overhead on the flush path.
    pub fn on_pwb(
        &self,
        first: u64,
        last: u64,
        site: Site,
        line_dirty: impl Fn(u64) -> bool,
    ) -> u64 {
        let me = tid();
        let mut st = self.state.lock();
        let mut redundant = 0;
        for line in first..=last {
            let had_new_store = st.dirty.remove(&line).is_some();
            let already_queued = st.written_back.contains_key(&(me, line));
            // A pwb earns its keep only if the line carries a store this
            // thread has not already queued for write-back: re-queueing an
            // unchanged line, or flushing a clean one, is pure overhead.
            if !had_new_store && (already_queued || !line_dirty(line)) {
                redundant += 1;
            }
            st.written_back.insert((me, line), QueuedPwb { site, commit: false });
        }
        redundant
    }

    /// A fence on the calling thread: its WrittenBack lines become
    /// Persisted and its pending commit words are now covered.
    pub fn on_fence(&self) {
        let me = tid();
        let mut st = self.state.lock();
        st.written_back.retain(|(t, _), _| *t != me);
        st.commits.retain(|c| c.tid != me);
    }

    /// Checks the `commit_store` precondition: on this thread, no line may
    /// still be Dirty (store without `pwb`) and no *payload* `pwb` may be
    /// un-fenced — otherwise the commit word is being published before the
    /// fence that covers its payload. Queued flushes issued by earlier
    /// `commit_store`s are exempt: a group commit legitimately publishes
    /// several commit words between one fence and the trailing barrier.
    /// Returns a violation message, or `None`.
    pub fn check_commit(&self, dimm_id: u64, off: u64, line: u64, site: Site) -> Option<String> {
        let me = tid();
        let mut st = self.state.lock();
        let queued: Vec<(u64, Site)> = st
            .written_back
            .iter()
            .filter(|((t, _), q)| *t == me && !q.commit)
            .map(|((_, l), q)| (*l, q.site))
            .collect();
        if let Some((first_line, first_site)) = queued.iter().min_by_key(|(l, _)| *l) {
            let msg = format!(
                "pmcheck violation [dimm {dimm_id}]: commit_store at {site} — commit word at \
                 offset {off:#x} (line {line:#x}) stored before the fence covering its payload: \
                 {} written-back line(s) queued by this thread are still unfenced \
                 (first: line {first_line:#x}, pwb at {first_site})",
                queued.len(),
            );
            st.violations.push(msg.clone());
            return Some(msg);
        }
        let mut dirty: Vec<(u64, Site)> = st
            .dirty
            .iter()
            .filter(|(_, d)| d.tid == me)
            .map(|(l, d)| (*l, d.site))
            .collect();
        dirty.sort_unstable_by_key(|(l, _)| *l);
        if let Some((first_line, first_site)) = dirty.first() {
            let msg = format!(
                "pmcheck violation [dimm {dimm_id}]: commit_store at {site} — commit word at \
                 offset {off:#x} (line {line:#x}) published while {} line(s) stored by this \
                 thread are still Dirty (no pwb issued; first: line {first_line:#x}, stored at \
                 {first_site})",
                dirty.len(),
            );
            st.violations.push(msg.clone());
            return Some(msg);
        }
        None
    }

    /// Registers a performed commit store (awaiting its covering fence) and
    /// marks its just-queued `pwb` as commit-origin so sibling commit words
    /// in the same group commit don't flag it as unfenced payload.
    pub fn register_commit(&self, line: u64, site: Site) {
        let me = tid();
        let mut st = self.state.lock();
        if let Some(q) = st.written_back.get_mut(&(me, line)) {
            q.commit = true;
        }
        st.commits.push(PendingCommit { line, tid: me, site });
    }

    /// Checks a `persist_fence`/`persist_barrier` precondition: every store
    /// this thread made must already be WrittenBack (a Dirty line at an
    /// annotated fence means a `pwb` was skipped). Returns a violation
    /// message, or `None`.
    pub fn check_barrier(&self, dimm_id: u64, op: &str, site: Site) -> Option<String> {
        let me = tid();
        let mut st = self.state.lock();
        let mut dirty: Vec<(u64, Site)> = st
            .dirty
            .iter()
            .filter(|(_, d)| d.tid == me)
            .map(|(l, d)| (*l, d.site))
            .collect();
        dirty.sort_unstable_by_key(|(l, _)| *l);
        if let Some((first_line, first_site)) = dirty.first() {
            let msg = format!(
                "pmcheck violation [dimm {dimm_id}]: {op} at {site} — fence reached with {} \
                 line(s) stored by this thread still Dirty (skipped pwb; first: line \
                 {first_line:#x}, stored at {first_site})",
                dirty.len(),
            );
            st.violations.push(msg.clone());
            return Some(msg);
        }
        None
    }

    /// Crash-time audit: a registered commit word that has gone Dirty again
    /// (rewritten by a plain store with no `pwb`) may be resurrected by
    /// cache eviction while the rewrite's payload is lost — the
    /// "published as durable while still Dirty" hazard. Returns new
    /// violation messages.
    pub fn check_crash(&self, dimm_id: u64) -> Vec<String> {
        let mut st = self.state.lock();
        let mut found = Vec::new();
        for c in &st.commits {
            if let Some(d) = st.dirty.get(&c.line) {
                found.push(format!(
                    "pmcheck violation [dimm {dimm_id}]: crash with commit word at line \
                     {:#x} (commit_store at {}) still Dirty — re-stored at {} with no pwb, \
                     so eviction may persist the publish without its payload",
                    c.line, c.site, d.site,
                ));
            }
        }
        st.violations.extend(found.iter().cloned());
        found
    }

    /// All violations recorded on this DIMM so far.
    pub fn violations(&self) -> Vec<String> {
        self.state.lock().violations.clone()
    }
}
