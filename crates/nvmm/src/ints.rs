use simclock::ActorClock;

use crate::{NvDimm, NvRegion};

/// Little-endian integer accessors over persistent memory.
///
/// NVCache's log layout is defined as explicit byte offsets (no
/// `#[repr(C)]`-cast structs — the simulator stays 100% safe Rust); this
/// trait provides the fixed-width accessors used by that layout. Reads use
/// the *cached* (uncharged) path because metadata words are part of lines the
/// owning thread just touched.
pub trait PmemInts {
    /// Raw store (see [`NvDimm::write`]).
    fn pm_write(&self, off: u64, data: &[u8], clock: &ActorClock);
    /// Raw cached load (see [`NvDimm::read_cached`]).
    fn pm_read_cached(&self, off: u64, buf: &mut [u8]);

    /// Writes a `u64` (little endian).
    fn write_u64(&self, off: u64, v: u64, clock: &ActorClock) {
        self.pm_write(off, &v.to_le_bytes(), clock);
    }

    /// Reads a `u64` (little endian, cached).
    fn read_u64(&self, off: u64) -> u64 {
        let mut b = [0u8; 8];
        self.pm_read_cached(off, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a `u32` (little endian).
    fn write_u32(&self, off: u64, v: u32, clock: &ActorClock) {
        self.pm_write(off, &v.to_le_bytes(), clock);
    }

    /// Reads a `u32` (little endian, cached).
    fn read_u32(&self, off: u64) -> u32 {
        let mut b = [0u8; 4];
        self.pm_read_cached(off, &mut b);
        u32::from_le_bytes(b)
    }

    /// Writes an `i64` (little endian).
    fn write_i64(&self, off: u64, v: i64, clock: &ActorClock) {
        self.pm_write(off, &v.to_le_bytes(), clock);
    }

    /// Reads an `i64` (little endian, cached).
    fn read_i64(&self, off: u64) -> i64 {
        let mut b = [0u8; 8];
        self.pm_read_cached(off, &mut b);
        i64::from_le_bytes(b)
    }
}

impl PmemInts for NvDimm {
    fn pm_write(&self, off: u64, data: &[u8], clock: &ActorClock) {
        self.write(off, data, clock);
    }
    fn pm_read_cached(&self, off: u64, buf: &mut [u8]) {
        self.read_cached(off, buf);
    }
}

impl PmemInts for NvRegion {
    fn pm_write(&self, off: u64, data: &[u8], clock: &ActorClock) {
        self.write(off, data, clock);
    }
    fn pm_read_cached(&self, off: u64, buf: &mut [u8]) {
        self.read_cached(off, buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NvmmProfile;
    use std::sync::Arc;

    #[test]
    fn u64_round_trip() {
        let c = ActorClock::new();
        let d = NvDimm::new(64, NvmmProfile::instant());
        d.write_u64(8, 0xDEAD_BEEF_CAFE_F00D, &c);
        assert_eq!(d.read_u64(8), 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    fn u32_and_i64_round_trip_via_region() {
        let c = ActorClock::new();
        let d = Arc::new(NvDimm::new(128, NvmmProfile::instant()));
        let r = NvRegion::new(d, 64, 64);
        r.write_u32(0, 77, &c);
        r.write_i64(8, -42, &c);
        assert_eq!(r.read_u32(0), 77);
        assert_eq!(r.read_i64(8), -42);
    }

    #[test]
    fn little_endian_layout() {
        let c = ActorClock::new();
        let d = NvDimm::new(64, NvmmProfile::instant());
        d.write_u32(0, 0x0102_0304, &c);
        let mut b = [0u8; 4];
        d.read_cached(0, &mut b);
        assert_eq!(b, [4, 3, 2, 1]);
    }
}
