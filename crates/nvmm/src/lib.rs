//! A simulator of byte-addressable non-volatile main memory (NVMM).
//!
//! The NVCache paper (DSN'21) runs on Intel Optane NVDIMMs and relies on three
//! hardware primitives (paper §III, Algorithm 1):
//!
//! * `pwb(addr)` — enqueue the cache line containing `addr` for write-back
//!   (`clwb` on x86);
//! * `pfence`   — order: all preceding `pwb`s are executed before anything
//!   after the fence (`sfence`);
//! * `psync`    — like `pfence`, and additionally guarantees the lines are
//!   drained to the NVMM media.
//!
//! This crate reproduces those semantics in software. Every [`NvDimm`] keeps
//! a *live* image (what the program reads and writes — i.e. the CPU caches
//! plus media) and a *durable* image (what would survive a power failure).
//! Stores only touch the live image; a line becomes durable when it has been
//! `pwb`'d **and** a subsequent `pfence`/`psync` from the same thread has
//! executed — exactly the contract crash-consistent code must follow. Calling
//! [`NvDimm::crash`] discards everything that was not durable, which makes
//! ordering bugs observable in tests instead of latent.
//!
//! Latency is charged against virtual time ([`simclock`]) using an
//! Optane-like profile; the DIMM is a shared [`Resource`](simclock::Resource)
//! so concurrent flushers contend for media bandwidth.
//!
//! # Example
//!
//! ```
//! use nvmm::{NvDimm, NvmmProfile};
//! use simclock::ActorClock;
//!
//! let clock = ActorClock::new();
//! let dimm = NvDimm::new(4096, NvmmProfile::optane());
//! dimm.write(0, b"hello", &clock);
//! dimm.pwb(0, 5);
//! dimm.pfence(&clock);
//! let recovered = dimm.crash_and_restart();
//! let mut buf = [0u8; 5];
//! recovered.read(0, &mut buf, &clock);
//! assert_eq!(&buf, b"hello");
//! ```

mod dimm;
mod ints;
#[cfg(feature = "pmcheck")]
mod pmcheck;
mod profile;
mod region;
mod stats;

pub use dimm::{NvDimm, CACHE_LINE};
pub use ints::PmemInts;
pub use profile::NvmmProfile;
pub use region::NvRegion;
pub use stats::NvmmStats;
