//! fiosim — a FIO-like flexible I/O tester for the NVCache reproduction.
//!
//! The paper's §IV-C analysis drives everything with FIO 3.20 configured as
//! `fsync=1 direct=1 bs=4k ioengine=psync`; this crate reproduces that
//! workload generator against any [`vfs::FileSystem`], measuring per-second
//! virtual-time series of throughput, average latency and cumulative bytes —
//! the three panels of paper Figures 4–7.
//!
//! The crate also hosts [`IoRing`], an io_uring-style submission/completion
//! ring (see [`uring`]) that models batched, overlapping I/O under virtual
//! time; the NVCache cleanup workers drain the NVMM log through it.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use fiosim::{JobSpec, RwMode, run_job};
//! use simclock::ActorClock;
//! use vfs::{FileSystem, MemFs};
//!
//! # fn main() -> Result<(), vfs::IoError> {
//! let fs: Arc<dyn FileSystem> = Arc::new(MemFs::new());
//! let spec = JobSpec {
//!     name: "smoke".into(),
//!     rw: RwMode::RandWrite,
//!     file_size: 1 << 20,
//!     io_total: 1 << 20,
//!     ..JobSpec::default()
//! };
//! let result = run_job(&fs, &spec, &ActorClock::new())?;
//! assert_eq!(result.total_bytes, 1 << 20);
//! # Ok(())
//! # }
//! ```

pub mod hist;
pub mod uring;

pub use hist::LatencyHistogram;
pub use uring::{Cqe, IoRing};

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simclock::{ActorClock, SimTime, TimeSeries};
use vfs::{FileSystem, IoResult, OpenFlags};

/// Access pattern, as in fio's `rw=` option.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RwMode {
    /// Sequential reads.
    Read,
    /// Sequential writes.
    Write,
    /// Random reads.
    RandRead,
    /// Random writes.
    RandWrite,
    /// Mixed random I/O with the given read percentage.
    RandRw {
        /// Percentage of operations that are reads (0–100).
        read_pct: u8,
    },
}

impl RwMode {
    fn has_reads(self) -> bool {
        !matches!(self, RwMode::Write | RwMode::RandWrite)
    }
    fn is_random(self) -> bool {
        matches!(self, RwMode::RandRead | RwMode::RandWrite | RwMode::RandRw { .. })
    }
}

/// One FIO job description.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Job name (reporting only).
    pub name: String,
    /// Target file path.
    pub path: String,
    /// Access pattern.
    pub rw: RwMode,
    /// Block size (`bs=`).
    pub bs: usize,
    /// Size of the target file (`filesize=`); offsets stay below it.
    pub file_size: u64,
    /// Total bytes to transfer (`io_size=`).
    pub io_total: u64,
    /// Issue `fsync` after every N writes (`fsync=`; 0 disables).
    pub fsync_every: u32,
    /// Open with `O_DIRECT` (`direct=1`).
    pub direct: bool,
    /// Pre-fill the file before timed reads (fio lays out files too).
    pub prefill: bool,
    /// RNG seed for offset/mix decisions.
    pub seed: u64,
    /// Sampling interval for the time series.
    pub sample_interval: SimTime,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            name: "job".into(),
            path: "/fio/data".into(),
            rw: RwMode::RandWrite,
            bs: 4096,
            file_size: 64 << 20,
            io_total: 64 << 20,
            fsync_every: 1,
            direct: true,
            prefill: false,
            seed: 42,
            sample_interval: SimTime::from_millis(250),
        }
    }
}

/// Result of one job run.
#[derive(Debug, Default)]
pub struct JobResult {
    /// Job name.
    pub name: String,
    /// Bytes actually transferred.
    pub total_bytes: u64,
    /// Bytes written (subset of total).
    pub written_bytes: u64,
    /// Bytes read (subset of total).
    pub read_bytes: u64,
    /// Virtual time from first to last operation.
    pub elapsed: SimTime,
    /// Mean per-operation latency.
    pub mean_latency: SimTime,
    /// Maximum per-operation latency.
    pub max_latency: SimTime,
    /// Median per-operation latency (50th percentile, interpolated on
    /// [`latency_hist`](JobResult::latency_hist)).
    pub p50_latency: SimTime,
    /// Tail per-operation latency (99th percentile, interpolated).
    pub p99_latency: SimTime,
    /// Extreme-tail per-operation latency (99.9th percentile,
    /// interpolated).
    pub p999_latency: SimTime,
    /// The full per-operation latency distribution — mergeable, so callers
    /// aggregating several jobs (the traffic engine's tenants, multi-file
    /// sweeps) can combine distributions instead of re-deriving them from
    /// raw samples.
    pub latency_hist: LatencyHistogram,
    /// Operations issued.
    pub ops: u64,
    /// (interval start, MiB/s) series — paper Fig. 4 left panel.
    pub throughput: Vec<(SimTime, f64)>,
    /// (interval start, µs) *cumulative average* latency series — the paper
    /// reports "average latency as measured from the beginning of the run
    /// to the end of each period" (Fig. 4 middle panel).
    pub avg_latency: Vec<(SimTime, f64)>,
    /// (interval start, GiB) cumulative transferred data — Fig. 4 right.
    pub cumulative_gib: Vec<(SimTime, f64)>,
    /// Same series restricted to writes (for mixed workloads, Fig. 7).
    pub write_throughput: Vec<(SimTime, f64)>,
    /// Read-only throughput series (Fig. 7 right panel).
    pub read_throughput: Vec<(SimTime, f64)>,
}

impl JobResult {
    /// Mean throughput over the whole run, in MiB/s.
    pub fn mean_throughput_mib_s(&self) -> f64 {
        if self.elapsed == SimTime::ZERO {
            return 0.0;
        }
        self.total_bytes as f64 / (1u64 << 20) as f64 / self.elapsed.as_secs_f64()
    }
}

fn make_pattern(bs: usize, salt: u64) -> Vec<u8> {
    (0..bs)
        .map(|i| ((i as u64).wrapping_mul(31).wrapping_add(salt) % 251) as u8)
        .collect()
}

/// Runs one job against `fs`, charging all I/O to `clock`.
///
/// # Errors
///
/// Propagates any error from the underlying file system.
pub fn run_job(
    fs: &Arc<dyn FileSystem>,
    spec: &JobSpec,
    clock: &ActorClock,
) -> IoResult<JobResult> {
    let mut flags = OpenFlags::RDWR | OpenFlags::CREATE;
    if spec.direct {
        flags |= OpenFlags::DIRECT;
    }
    let fd = fs.open(&spec.path, flags, clock)?;

    if spec.prefill || spec.rw.has_reads() {
        // Lay out the file on a throwaway clock so the timed phase starts
        // from a populated file without inheriting the layout cost.
        let layout_clock = ActorClock::starting_at(clock.now());
        let pattern = make_pattern(spec.bs.max(4096), 7);
        let mut off = 0;
        while off < spec.file_size {
            let n = pattern.len().min((spec.file_size - off) as usize);
            fs.pwrite(fd, &pattern[..n], off, &layout_clock)?;
            off += n as u64;
        }
        fs.fsync(fd, &layout_clock)?;
    }

    let mut rng = StdRng::seed_from_u64(spec.seed);
    let blocks = (spec.file_size / spec.bs as u64).max(1);
    let pattern = make_pattern(spec.bs, 3);
    let mut read_buf = vec![0u8; spec.bs];

    let start = clock.now();
    let bytes_series = TimeSeries::new();
    let written_series = TimeSeries::new();
    let read_series = TimeSeries::new();
    let mut lat_samples: Vec<(SimTime, SimTime)> = Vec::new(); // (when, latency)

    let mut done = 0u64;
    let mut written = 0u64;
    let mut read = 0u64;
    let mut ops = 0u64;
    let mut seq_block = 0u64;
    let mut writes_since_fsync = 0u32;
    let mut lat_sum = SimTime::ZERO;
    let mut lat_max = SimTime::ZERO;
    let mut lat_hist = LatencyHistogram::new();

    while done < spec.io_total {
        let is_read = match spec.rw {
            RwMode::Read | RwMode::RandRead => true,
            RwMode::Write | RwMode::RandWrite => false,
            RwMode::RandRw { read_pct } => rng.gen_range(0..100u32) < read_pct as u32,
        };
        let block = if spec.rw.is_random() {
            rng.gen_range(0..blocks)
        } else {
            let b = seq_block % blocks;
            seq_block += 1;
            b
        };
        let off = block * spec.bs as u64;
        let before = clock.now();
        let n = if is_read {
            let n = fs.pread(fd, &mut read_buf, off, clock)?;
            read += n as u64;
            n
        } else {
            let n = fs.pwrite(fd, &pattern, off, clock)?;
            written += n as u64;
            writes_since_fsync += 1;
            if spec.fsync_every > 0 && writes_since_fsync >= spec.fsync_every {
                fs.fsync(fd, clock)?;
                writes_since_fsync = 0;
            }
            n
        };
        let now = clock.now();
        let lat = now - before;
        lat_sum += lat;
        lat_max = lat_max.max(lat);
        lat_hist.record(lat);
        ops += 1;
        done += n.max(1) as u64;
        lat_samples.push((now, lat));
        bytes_series.record(now, done as f64);
        written_series.record(now, written as f64);
        read_series.record(now, read as f64);
    }
    // fio reports steady-state transfer time; teardown (close) is excluded —
    // under NVCache, close additionally pushes still-pending log entries to
    // the kernel, which is not part of the measured I/O phase.
    let elapsed = clock.now() - start;
    fs.close(fd, clock)?;

    // Cumulative-average latency per sample interval.
    let mut avg_latency = Vec::new();
    {
        let mut sum = SimTime::ZERO;
        let mut count = 0u64;
        let width = spec.sample_interval.as_nanos().max(1);
        let mut current_bin: Option<u64> = None;
        for (when, lat) in &lat_samples {
            let bin = when.saturating_sub(start).as_nanos() / width;
            if current_bin.is_some_and(|b| b != bin) {
                let b = current_bin.expect("bin set");
                avg_latency
                    .push((SimTime::from_nanos(b * width), (sum / count.max(1)).as_micros_f64()));
            }
            current_bin = Some(bin);
            sum += *lat;
            count += 1;
        }
        if let Some(b) = current_bin {
            avg_latency
                .push((SimTime::from_nanos(b * width), (sum / count.max(1)).as_micros_f64()));
        }
    }

    let cumulative_gib = bytes_series
        .binned(spec.sample_interval)
        .into_iter()
        .map(|b| (b.t, b.last / (1u64 << 30) as f64))
        .collect();

    // Interpolated percentiles over the merged log-scale histogram (fio's
    // clat percentiles) — unlike nearest-rank over raw samples, tiny
    // sample counts don't collapse p50/p99/p999 onto one sample.
    let (p50_latency, p99_latency, p999_latency) =
        (lat_hist.p50(), lat_hist.p99(), lat_hist.p999());

    Ok(JobResult {
        name: spec.name.clone(),
        total_bytes: done,
        written_bytes: written,
        read_bytes: read,
        elapsed,
        mean_latency: if ops == 0 { SimTime::ZERO } else { lat_sum / ops },
        max_latency: lat_max,
        p50_latency,
        p99_latency,
        p999_latency,
        latency_hist: lat_hist,
        ops,
        throughput: bytes_series.throughput_mib_s(spec.sample_interval),
        avg_latency,
        cumulative_gib,
        write_throughput: written_series.throughput_mib_s(spec.sample_interval),
        read_throughput: read_series.throughput_mib_s(spec.sample_interval),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::MemFs;

    fn memfs() -> Arc<dyn FileSystem> {
        Arc::new(MemFs::new())
    }

    #[test]
    fn randwrite_transfers_exactly_io_total() {
        let fs = memfs();
        let spec = JobSpec {
            rw: RwMode::RandWrite,
            file_size: 1 << 20,
            io_total: 1 << 20,
            ..JobSpec::default()
        };
        let r = run_job(&fs, &spec, &ActorClock::new()).unwrap();
        assert_eq!(r.total_bytes, 1 << 20);
        assert_eq!(r.written_bytes, 1 << 20);
        assert_eq!(r.read_bytes, 0);
        assert_eq!(r.ops, 256);
        assert!(r.elapsed > SimTime::ZERO);
        assert!(r.mean_throughput_mib_s() > 0.0);
    }

    #[test]
    fn sequential_write_covers_the_file_in_order() {
        let fs = memfs();
        let spec = JobSpec {
            rw: RwMode::Write,
            file_size: 256 << 10,
            io_total: 256 << 10,
            fsync_every: 0,
            ..JobSpec::default()
        };
        let clock = ActorClock::new();
        run_job(&fs, &spec, &clock).unwrap();
        assert_eq!(fs.stat("/fio/data", &clock).unwrap().size, 256 << 10);
    }

    #[test]
    fn read_jobs_prefill_and_only_read() {
        let fs = memfs();
        let spec = JobSpec {
            rw: RwMode::RandRead,
            file_size: 512 << 10,
            io_total: 256 << 10,
            ..JobSpec::default()
        };
        let r = run_job(&fs, &spec, &ActorClock::new()).unwrap();
        assert_eq!(r.read_bytes, 256 << 10);
        assert_eq!(r.written_bytes, 0);
    }

    #[test]
    fn mixed_workload_has_both_kinds() {
        let fs = memfs();
        let spec = JobSpec {
            rw: RwMode::RandRw { read_pct: 50 },
            file_size: 1 << 20,
            io_total: 1 << 20,
            seed: 7,
            ..JobSpec::default()
        };
        let r = run_job(&fs, &spec, &ActorClock::new()).unwrap();
        assert!(r.read_bytes > 0, "expected some reads");
        assert!(r.written_bytes > 0, "expected some writes");
        assert_eq!(r.read_bytes + r.written_bytes, r.total_bytes);
    }

    #[test]
    fn series_are_consistent_with_totals() {
        let fs = memfs();
        let spec = JobSpec {
            rw: RwMode::RandWrite,
            file_size: 1 << 20,
            io_total: 1 << 20,
            ..JobSpec::default()
        };
        let r = run_job(&fs, &spec, &ActorClock::new()).unwrap();
        assert!(!r.throughput.is_empty());
        assert!(!r.avg_latency.is_empty());
        let last = r.cumulative_gib.last().unwrap().1;
        assert!((last - 1.0 / 1024.0).abs() < 1e-9, "cumulative GiB mismatch: {last}");
    }

    #[test]
    fn percentiles_are_ordered_and_histogram_matches_ops() {
        let fs = memfs();
        let spec = JobSpec {
            rw: RwMode::RandWrite,
            file_size: 1 << 20,
            io_total: 1 << 20,
            ..JobSpec::default()
        };
        let r = run_job(&fs, &spec, &ActorClock::new()).unwrap();
        assert_eq!(r.latency_hist.count(), r.ops);
        assert!(r.p50_latency <= r.p99_latency);
        assert!(r.p99_latency <= r.p999_latency);
        assert!(r.p999_latency <= r.max_latency);
        assert!(r.p50_latency > SimTime::ZERO);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let spec = JobSpec {
            rw: RwMode::RandWrite,
            file_size: 1 << 20,
            io_total: 256 << 10,
            ..JobSpec::default()
        };
        let a = run_job(&memfs(), &spec, &ActorClock::new()).unwrap();
        let b = run_job(&memfs(), &spec, &ActorClock::new()).unwrap();
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.mean_latency, b.mean_latency);
    }
}
