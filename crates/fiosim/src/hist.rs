//! [`LatencyHistogram`]: a mergeable, log-scale latency histogram.
//!
//! The HPC-NVM I/O modelling literature (and any saturation study) needs
//! *distributional* latency — p50/p99/p999 — not means, measured over runs
//! far too long to keep every sample. This is an HdrHistogram-style
//! log-linear bucket array: values are grouped by their power-of-two octave
//! with [`SUB_BUCKETS`] linear sub-buckets per octave, so the relative
//! quantization error is bounded by `1 / SUB_BUCKETS` (≈6%) at every
//! magnitude from nanoseconds to hours, storage is a fixed few KiB, and two
//! histograms merge by adding counts — the property that lets per-tenant,
//! per-op-class and per-run distributions combine without re-sampling.
//!
//! Quantiles interpolate linearly *within* the resolved bucket, which fixes
//! the nearest-rank degeneracy where tiny sample counts collapse p50, p99
//! and p999 onto the same raw sample. The recorded minimum and maximum are
//! kept exactly and clamp the interpolation, so `quantile(0.0)` and
//! `quantile(1.0)` return true observed extremes.
//!
//! # Example
//!
//! ```
//! use fiosim::LatencyHistogram;
//! use simclock::SimTime;
//!
//! let mut h = LatencyHistogram::new();
//! for us in [10u64, 12, 15, 20, 400] {
//!     h.record(SimTime::from_micros(us));
//! }
//! assert_eq!(h.count(), 5);
//! assert!(h.p50() < h.p99());
//! assert_eq!(h.max(), SimTime::from_micros(400));
//! ```

use simclock::SimTime;

/// Linear sub-buckets per power-of-two octave (relative error ≤ 1/16).
pub const SUB_BUCKETS: usize = 16;

const SUB_BITS: u32 = 4; // log2(SUB_BUCKETS)

/// Buckets indexable by a `u64` nanosecond value: the first octave holds
/// values `0..SUB_BUCKETS` exactly; each further octave adds `SUB_BUCKETS`
/// buckets up to 2^64.
const NUM_BUCKETS: usize = SUB_BUCKETS + (64 - SUB_BITS as usize) * SUB_BUCKETS;

/// A mergeable log-scale histogram of [`SimTime`] latencies.
///
/// See the [module docs](self) for the bucket scheme and error bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a nanosecond value.
fn bucket_for(ns: u64) -> usize {
    if ns < SUB_BUCKETS as u64 {
        return ns as usize;
    }
    // `ns` lies in octave `o` (value in [2^o, 2^(o+1)), o >= SUB_BITS);
    // the top SUB_BITS bits below the leading one pick the sub-bucket.
    let o = 63 - ns.leading_zeros();
    let sub = ((ns >> (o - SUB_BITS)) - SUB_BUCKETS as u64) as usize;
    SUB_BUCKETS + (o - SUB_BITS) as usize * SUB_BUCKETS + sub
}

/// Inclusive lower bound of a bucket, in nanoseconds.
fn bucket_low(idx: usize) -> u64 {
    if idx < SUB_BUCKETS {
        return idx as u64;
    }
    let rest = idx - SUB_BUCKETS;
    let o = (rest / SUB_BUCKETS) as u32 + SUB_BITS;
    let sub = (rest % SUB_BUCKETS) as u64;
    (SUB_BUCKETS as u64 + sub) << (o - SUB_BITS)
}

/// Exclusive upper bound of a bucket, in nanoseconds (saturating).
fn bucket_high(idx: usize) -> u64 {
    if idx < SUB_BUCKETS {
        return idx as u64 + 1;
    }
    let rest = idx - SUB_BUCKETS;
    let o = (rest / SUB_BUCKETS) as u32 + SUB_BITS;
    let sub = (rest % SUB_BUCKETS) as u128 + 1;
    // The very top bucket's bound is exactly 2^64: saturate.
    let high = (SUB_BUCKETS as u128 + sub) << (o - SUB_BITS);
    u64::try_from(high).unwrap_or(u64::MAX)
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, lat: SimTime) {
        self.record_n(lat, 1);
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, lat: SimTime, n: u64) {
        if n == 0 {
            return;
        }
        let ns = lat.as_nanos();
        self.counts[bucket_for(ns)] += n;
        self.count += n;
        self.sum_ns += ns as u128 * n as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Adds every sample of `other` into `self` (the merge that makes
    /// per-tenant / per-class distributions combinable).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact minimum recorded sample ([`SimTime::ZERO`] when empty).
    pub fn min(&self) -> SimTime {
        if self.count == 0 {
            SimTime::ZERO
        } else {
            SimTime::from_nanos(self.min_ns)
        }
    }

    /// Exact maximum recorded sample ([`SimTime::ZERO`] when empty).
    pub fn max(&self) -> SimTime {
        SimTime::from_nanos(self.max_ns)
    }

    /// Mean of all recorded samples ([`SimTime::ZERO`] when empty).
    pub fn mean(&self) -> SimTime {
        if self.count == 0 {
            SimTime::ZERO
        } else {
            SimTime::from_nanos((self.sum_ns / self.count as u128) as u64)
        }
    }

    /// The latency at quantile `q ∈ [0, 1]`, linearly interpolated within
    /// the resolved bucket and clamped to the exact recorded min/max.
    /// Returns [`SimTime::ZERO`] on an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> SimTime {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return SimTime::ZERO;
        }
        // Fractional target rank in [0, count]: rank r means "q of the mass
        // lies at or below this point".
        let target = q * self.count as f64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let below = seen as f64;
            seen += c;
            if (seen as f64) < target {
                continue;
            }
            // Interpolate within this bucket's span by the fraction of the
            // bucket's mass the target rank sits at.
            let frac = ((target - below) / c as f64).clamp(0.0, 1.0);
            let low = bucket_low(idx) as f64;
            let high = bucket_high(idx) as f64;
            let v = low + (high - low) * frac;
            let ns = (v.round() as u64).clamp(self.min_ns, self.max_ns);
            return SimTime::from_nanos(ns);
        }
        SimTime::from_nanos(self.max_ns)
    }

    /// Median (50th percentile).
    pub fn p50(&self) -> SimTime {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> SimTime {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> SimTime {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_is_monotonic_and_self_consistent() {
        let probes = [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            100,
            1_000,
            4_095,
            4_096,
            1 << 20,
            (1 << 40) + 12345,
            u64::MAX,
        ];
        let mut last = None;
        for &v in &probes {
            let b = bucket_for(v);
            assert!(bucket_low(b) <= v, "low({b}) <= {v}");
            assert!(v < bucket_high(b) || bucket_high(b) == u64::MAX, "{v} < high({b})");
            if let Some(prev) = last {
                assert!(b >= prev, "bucket index must not decrease");
            }
            last = Some(b);
        }
        assert!(bucket_for(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn quantiles_bounded_by_true_extremes() {
        let mut h = LatencyHistogram::new();
        for us in [3u64, 7, 19, 100, 250] {
            h.record(SimTime::from_micros(us));
        }
        assert_eq!(h.quantile(0.0), SimTime::from_micros(3));
        assert_eq!(h.quantile(1.0), SimTime::from_micros(250));
        assert_eq!(h.min(), SimTime::from_micros(3));
        assert_eq!(h.max(), SimTime::from_micros(250));
        let p50 = h.p50();
        assert!(p50 >= SimTime::from_micros(3) && p50 <= SimTime::from_micros(250));
    }

    #[test]
    fn interpolation_separates_tail_percentiles_on_tiny_samples() {
        // Nearest-rank over 10 raw samples resolves p99 and p999 to the
        // same (10th) sample; the interpolated histogram keeps them apart
        // whenever the top bucket has width.
        let mut h = LatencyHistogram::new();
        for us in [10u64, 11, 12, 13, 14, 15, 16, 17, 18, 900] {
            h.record(SimTime::from_micros(us));
        }
        assert!(h.p50() < h.p99(), "p50 {} !< p99 {}", h.p50(), h.p99());
        assert!(h.p99() <= h.p999());
        assert!(h.p999() <= h.max());
    }

    #[test]
    fn merge_equals_recording_everything_into_one() {
        let samples_a = [5u64, 90, 1_000, 42];
        let samples_b = [7u64, 7, 2_000_000];
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for &ns in &samples_a {
            a.record(SimTime::from_nanos(ns));
            all.record(SimTime::from_nanos(ns));
        }
        for &ns in &samples_b {
            b.record(SimTime::from_nanos(ns));
            all.record(SimTime::from_nanos(ns));
        }
        a.merge(&b);
        assert_eq!(a, all);
        assert_eq!(a.count(), 7);
    }

    #[test]
    fn relative_error_is_bounded() {
        // Every recorded value must be reproducible to within one
        // sub-bucket (1/16 relative error) by the quantile of its rank.
        let mut h = LatencyHistogram::new();
        let v = 123_457u64;
        h.record(SimTime::from_nanos(v));
        let q = h.p50().as_nanos() as f64;
        assert!((q - v as f64).abs() / v as f64 <= 1.0 / SUB_BUCKETS as f64 + 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), SimTime::ZERO);
        assert_eq!(h.p999(), SimTime::ZERO);
        assert_eq!(h.mean(), SimTime::ZERO);
        assert_eq!(h.min(), SimTime::ZERO);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LatencyHistogram::new();
        h.record_n(SimTime::from_nanos(100), 3);
        h.record(SimTime::from_nanos(700));
        assert_eq!(h.mean(), SimTime::from_nanos(250));
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn out_of_range_quantile_panics() {
        LatencyHistogram::new().quantile(1.5);
    }
}
