//! An io_uring-style asynchronous submission/completion ring over any
//! [`vfs::FileSystem`], deterministic under `simclock` virtual time.
//!
//! The kernel's `io_uring` lets an application queue many I/O operations,
//! submit them in one batch, and reap completions later — overlapping the
//! device latency of every in-flight operation instead of paying it once per
//! call. This module reproduces that *timing* model in the simulator:
//!
//! * [`IoRing::submit_pwrite`] / [`IoRing::submit_fsync`] perform the
//!   operation **eagerly** (side effects land in real execution order, so
//!   content semantics are identical to the synchronous path) but charge its
//!   latency to a private per-operation clock that starts at the operation's
//!   *dispatch* time;
//! * at most [`IoRing::depth`] operations are in flight: an operation
//!   dispatches at its submission time, or — when the ring is full — at the
//!   earliest completion among the in-flight set (a k-server window, exactly
//!   how a fixed-depth submission queue behaves);
//! * [`IoRing::wait_all`] reaps every completion and advances the caller's
//!   clock to the latest completion time — the `io_uring_enter(…, wait_nr)`
//!   moment where the submitter rejoins its I/O.
//!
//! With `depth == 1` the dispatch gate degenerates to "previous completion",
//! which makes the ring *exactly* equivalent to issuing the operations back
//! to back on one clock — the oracle property the NVCache cleanup path's
//! `queue_depth = 1` mode relies on (see `qd1_ring_is_identical_to_serial_io`
//! below).
//!
//! Determinism: everything happens on the submitting thread; the only shared
//! state touched is the file system itself, in submission order. Given the
//! same operation sequence and start times, completions are bit-identical.

use std::sync::Arc;

use simclock::{ActorClock, SimTime};
use vfs::{Fd, FileSystem, IoError, IoResult};

/// One reaped completion.
#[derive(Debug)]
pub struct Cqe {
    /// Caller-chosen tag identifying the submission.
    pub user_data: u64,
    /// The operation's outcome (bytes transferred for writes, `0` for
    /// fsyncs).
    pub result: IoResult<usize>,
    /// Virtual time at which the operation was dispatched to the file
    /// system.
    pub dispatched_at: SimTime,
    /// Virtual time at which the operation completed.
    pub completed_at: SimTime,
}

/// A fixed-depth submission/completion ring over a [`FileSystem`].
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use fiosim::IoRing;
/// use simclock::ActorClock;
/// use vfs::{FileSystem, MemFs, OpenFlags};
///
/// # fn main() -> Result<(), vfs::IoError> {
/// let fs: Arc<dyn FileSystem> = Arc::new(MemFs::new());
/// let clock = ActorClock::new();
/// let fd = fs.open("/f", OpenFlags::RDWR | OpenFlags::CREATE, &clock)?;
/// let mut ring = IoRing::new(Arc::clone(&fs), 8);
/// for i in 0..4u64 {
///     ring.submit_pwrite(fd, &[i as u8; 4096], i * 4096, i, clock.now());
/// }
/// let cqes = ring.wait_all(&clock); // clock now at the last completion
/// assert_eq!(cqes.len(), 4);
/// assert!(cqes.iter().all(|c| c.result.is_ok()));
/// # Ok(())
/// # }
/// ```
pub struct IoRing {
    fs: Arc<dyn FileSystem>,
    depth: usize,
    /// Completion times of in-flight (submitted, unreaped) operations,
    /// kept sorted ascending — the dispatch gate pops the earliest.
    inflight: Vec<SimTime>,
    /// Completions accumulated since the last [`IoRing::wait_all`].
    completed: Vec<Cqe>,
    /// Largest in-flight population observed since creation.
    peak_inflight: usize,
    submitted: u64,
}

impl std::fmt::Debug for IoRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IoRing")
            .field("depth", &self.depth)
            .field("in_flight", &self.inflight.len())
            .field("unreaped", &self.completed.len())
            .finish()
    }
}

impl IoRing {
    /// Creates a ring of the given queue depth over `fs`.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(fs: Arc<dyn FileSystem>, depth: usize) -> Self {
        assert!(depth >= 1, "ring depth must be at least 1");
        IoRing {
            fs,
            depth,
            inflight: Vec::new(),
            completed: Vec::new(),
            peak_inflight: 0,
            submitted: 0,
        }
    }

    /// The configured queue depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Submitted-but-unreaped operations.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Total operations submitted over the ring's lifetime.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Largest in-flight population seen so far (the observable measure of
    /// how much overlap the ring actually achieved).
    pub fn peak_in_flight(&self) -> usize {
        self.peak_inflight
    }

    /// When the next operation may dispatch: its submission time, or — ring
    /// full — the earliest completion among in-flight operations (which is
    /// thereby retired from the window). Operations whose virtual completion
    /// is already at or before `now` are retired first: they are no longer
    /// in flight at this instant, so they neither occupy a ring slot nor
    /// count towards [`IoRing::peak_in_flight`] (which would otherwise
    /// report queue occupancy between reaps instead of temporal overlap).
    fn dispatch_gate(&mut self, now: SimTime) -> SimTime {
        let done = self.inflight.partition_point(|&t| t <= now);
        self.inflight.drain(..done);
        if self.inflight.len() < self.depth {
            return now;
        }
        let earliest = self.inflight.remove(0);
        now.max(earliest)
    }

    fn record(&mut self, user_data: u64, result: IoResult<usize>, start: SimTime, done: SimTime) {
        let pos = self.inflight.partition_point(|&t| t <= done);
        self.inflight.insert(pos, done);
        self.peak_inflight = self.peak_inflight.max(self.inflight.len());
        self.submitted += 1;
        self.completed
            .push(Cqe { user_data, result, dispatched_at: start, completed_at: done });
    }

    /// Queues a positional write of `data` at `off`, submitted at `now`.
    /// The write's side effects are applied immediately (submission order is
    /// execution order); only its *latency* overlaps with other in-flight
    /// operations. Returns the recorded completion.
    pub fn submit_pwrite(
        &mut self,
        fd: Fd,
        data: &[u8],
        off: u64,
        user_data: u64,
        now: SimTime,
    ) -> &Cqe {
        let start = self.dispatch_gate(now);
        let op_clock = ActorClock::starting_at(start);
        let result = self.fs.pwrite(fd, data, off, &op_clock);
        let done = op_clock.now();
        self.record(user_data, result, start, done);
        self.completed.last().expect("just recorded")
    }

    /// Queues an `fsync` of `fd`, submitted at `now`. Same eager-execution,
    /// overlapped-latency contract as [`IoRing::submit_pwrite`].
    pub fn submit_fsync(&mut self, fd: Fd, user_data: u64, now: SimTime) -> &Cqe {
        let start = self.dispatch_gate(now);
        let op_clock = ActorClock::starting_at(start);
        let result = self.fs.fsync(fd, &op_clock).map(|()| 0);
        let done = op_clock.now();
        self.record(user_data, result, start, done);
        self.completed.last().expect("just recorded")
    }

    /// Reaps every completion: advances `clock` to the latest completion
    /// time and drains the completion queue. After this call the ring is
    /// empty and reusable.
    pub fn wait_all(&mut self, clock: &ActorClock) -> Vec<Cqe> {
        if let Some(&last) = self.inflight.last() {
            clock.advance_to(last);
        }
        self.inflight.clear();
        std::mem::take(&mut self.completed)
    }

    /// The first error among unreaped completions, if any (checked without
    /// reaping).
    pub fn first_error(&self) -> Option<&IoError> {
        self.completed.iter().find_map(|c| c.result.as_ref().err())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::{MemFs, OpenFlags};

    fn memfs() -> Arc<dyn FileSystem> {
        Arc::new(MemFs::new())
    }

    #[test]
    fn side_effects_are_applied_at_submission() {
        let fs = memfs();
        let clock = ActorClock::new();
        let fd = fs.open("/f", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
        let mut ring = IoRing::new(Arc::clone(&fs), 4);
        ring.submit_pwrite(fd, b"visible before reap", 0, 1, clock.now());
        // The write is already in the file even though nothing was reaped.
        let mut buf = [0u8; 19];
        fs.pread(fd, &mut buf, 0, &clock).unwrap();
        assert_eq!(&buf, b"visible before reap");
        let cqes = ring.wait_all(&clock);
        assert_eq!(cqes.len(), 1);
        assert_eq!(*cqes[0].result.as_ref().unwrap(), 19);
    }

    #[test]
    fn wait_all_advances_to_the_last_completion() {
        let fs = memfs();
        let clock = ActorClock::new();
        let fd = fs.open("/f", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
        let mut ring = IoRing::new(Arc::clone(&fs), 8);
        for i in 0..8u64 {
            ring.submit_pwrite(fd, &[1u8; 4096], i * 4096, i, clock.now());
        }
        assert_eq!(ring.in_flight(), 8);
        assert_eq!(ring.peak_in_flight(), 8);
        let cqes = ring.wait_all(&clock);
        assert_eq!(ring.in_flight(), 0);
        let last = cqes.iter().map(|c| c.completed_at).max().unwrap();
        assert_eq!(clock.now(), last);
    }

    #[test]
    fn depth_bounds_the_overlap_window() {
        let fs = memfs();
        let clock = ActorClock::new();
        let fd = fs.open("/f", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
        let mut ring = IoRing::new(Arc::clone(&fs), 2);
        for i in 0..6u64 {
            ring.submit_pwrite(fd, &[2u8; 4096], i * 4096, i, clock.now());
        }
        assert_eq!(ring.peak_in_flight(), 2);
        assert_eq!(ring.submitted(), 6);
        let cqes = ring.wait_all(&clock);
        // With depth 2, op i (i >= 2) dispatches no earlier than the
        // completion of some earlier op.
        let earliest_done = cqes.iter().map(|c| c.completed_at).min().unwrap();
        assert!(cqes[2].dispatched_at >= earliest_done);
    }

    #[test]
    fn qd1_ring_is_identical_to_serial_io() {
        // The oracle: a depth-1 ring must produce exactly the virtual
        // timeline of back-to-back calls threading one clock.
        let serial_fs = memfs();
        let serial_clock = ActorClock::new();
        let sfd = serial_fs
            .open("/f", OpenFlags::RDWR | OpenFlags::CREATE, &serial_clock)
            .unwrap();
        for i in 0..16u64 {
            serial_fs.pwrite(sfd, &[i as u8; 4096], i * 4096, &serial_clock).unwrap();
        }
        serial_fs.fsync(sfd, &serial_clock).unwrap();

        let ring_fs = memfs();
        let ring_clock = ActorClock::new();
        let rfd = ring_fs.open("/f", OpenFlags::RDWR | OpenFlags::CREATE, &ring_clock).unwrap();
        let mut ring = IoRing::new(Arc::clone(&ring_fs), 1);
        for i in 0..16u64 {
            ring.submit_pwrite(rfd, &[i as u8; 4096], i * 4096, i, ring_clock.now());
        }
        ring.wait_all(&ring_clock);
        ring.submit_fsync(rfd, 99, ring_clock.now());
        ring.wait_all(&ring_clock);

        assert_eq!(serial_clock.now(), ring_clock.now(), "QD=1 must be serial-equivalent");
    }

    #[test]
    fn qd1_ring_is_identical_to_serial_io_on_a_real_device_stack() {
        // Same oracle as above, but over Ext4+SSD so every charged latency
        // (syscall, page cache, device service, journal commit, flush) is in
        // play: the depth-1 ring must reproduce the synchronous drain's
        // virtual timeline to the nanosecond. O_DIRECT writes 1 MiB apart
        // keep the device in its random-write regime.
        use blockdev::{BlockDevice, SsdDevice, SsdProfile};
        use vfs::{Ext4, Ext4Profile};
        let stack = || -> Arc<dyn FileSystem> {
            let ssd = Arc::new(SsdDevice::new(SsdProfile::s4600()));
            Arc::new(Ext4::new("ext4+ssd", ssd as Arc<dyn BlockDevice>, Ext4Profile::default()))
        };
        let flags = OpenFlags::RDWR | OpenFlags::CREATE | OpenFlags::DIRECT;

        let serial_fs = stack();
        let serial_clock = ActorClock::new();
        let sfd = serial_fs.open("/f", flags, &serial_clock).unwrap();
        for i in 0..32u64 {
            serial_fs.pwrite(sfd, &[i as u8; 4096], i << 20, &serial_clock).unwrap();
        }
        serial_fs.fsync(sfd, &serial_clock).unwrap();

        let ring_fs = stack();
        let ring_clock = ActorClock::new();
        let rfd = ring_fs.open("/f", flags, &ring_clock).unwrap();
        let mut ring = IoRing::new(Arc::clone(&ring_fs), 1);
        for i in 0..32u64 {
            ring.submit_pwrite(rfd, &[i as u8; 4096], i << 20, i, ring_clock.now());
        }
        ring.wait_all(&ring_clock);
        ring.submit_fsync(rfd, 99, ring_clock.now());
        ring.wait_all(&ring_clock);

        assert_eq!(serial_clock.now(), ring_clock.now());
        assert!(serial_clock.now() > SimTime::from_millis(1), "the device time must be real");
    }

    #[test]
    fn deeper_rings_overlap_device_time_on_a_parallel_device() {
        use blockdev::{BlockDevice, SsdDevice, SsdProfile};
        use vfs::{Ext4, Ext4Profile};
        let elapsed = |depth: usize| {
            let ssd = Arc::new(SsdDevice::new(SsdProfile::s4600().with_queue_depth(depth)));
            let fs: Arc<dyn FileSystem> = Arc::new(Ext4::new(
                "ext4+ssd",
                ssd as Arc<dyn BlockDevice>,
                Ext4Profile::default(),
            ));
            let clock = ActorClock::new();
            let fd = fs
                .open("/f", OpenFlags::RDWR | OpenFlags::CREATE | OpenFlags::DIRECT, &clock)
                .unwrap();
            let mut ring = IoRing::new(Arc::clone(&fs), depth);
            for i in 0..32u64 {
                ring.submit_pwrite(fd, &[1u8; 4096], i << 20, i, clock.now());
            }
            ring.wait_all(&clock);
            clock.now()
        };
        let qd1 = elapsed(1);
        let qd8 = elapsed(8);
        assert!(qd8 * 4 < qd1, "expected ~8x overlap: qd8 {qd8} vs qd1 {qd1}");
    }

    #[test]
    fn errors_surface_in_the_cqe_not_as_panics() {
        let fs = memfs();
        let clock = ActorClock::new();
        // Write through a descriptor that was never opened.
        let mut ring = IoRing::new(Arc::clone(&fs), 2);
        ring.submit_pwrite(Fd(777), b"nope", 0, 5, clock.now());
        assert!(ring.first_error().is_some());
        let cqes = ring.wait_all(&clock);
        assert_eq!(cqes[0].user_data, 5);
        assert!(cqes[0].result.is_err());
    }

    #[test]
    fn ring_is_reusable_after_reap() {
        let fs = memfs();
        let clock = ActorClock::new();
        let fd = fs.open("/f", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
        let mut ring = IoRing::new(Arc::clone(&fs), 4);
        ring.submit_pwrite(fd, &[1u8; 64], 0, 0, clock.now());
        assert_eq!(ring.wait_all(&clock).len(), 1);
        ring.submit_fsync(fd, 1, clock.now());
        ring.submit_pwrite(fd, &[2u8; 64], 64, 2, clock.now());
        let cqes = ring.wait_all(&clock);
        assert_eq!(cqes.len(), 2);
        assert_eq!(ring.submitted(), 3);
    }
}
