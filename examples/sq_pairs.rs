//! Multi-queue submission front-end: per-core SQ/CQ pairs with
//! doorbell-batched stripe reservation.
//!
//! A submitter enqueues writes into its private submission queue (paying
//! only the NVMM copy), then rings the doorbell once: the whole burst is
//! committed with one libc crossing and one pfence/psync pair per stripe
//! chunk instead of one per write. Completions are reaped asynchronously
//! from the paired completion queue; a write is durable exactly when its
//! completion says so.
//!
//! Run with: `cargo run --example sq_pairs`

use std::error::Error;
use std::sync::Arc;

use nvcache_repro::blockdev::{SsdDevice, SsdProfile};
use nvcache_repro::nvcache::{NvCache, NvCacheConfig};
use nvcache_repro::nvmm::{NvDimm, NvRegion, NvmmProfile};
use nvcache_repro::simclock::ActorClock;
use nvcache_repro::vfs::{Ext4, Ext4Profile, FileSystem, OpenFlags};

fn main() -> Result<(), Box<dyn Error>> {
    let clock = ActorClock::new();

    let ssd = Arc::new(SsdDevice::new(SsdProfile::s4600()));
    let ext4: Arc<dyn FileSystem> = Arc::new(Ext4::new("ext4+ssd", ssd, Ext4Profile::default()));

    // Four log stripes, four SQ/CQ pairs — one per simulated core.
    let cfg = NvCacheConfig::default().scaled(256).with_log_shards(4).with_sq_pairs(4);
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::optane()));
    let cache = Arc::new(
        NvCache::builder(NvRegion::whole(dimm))
            .backend(ext4)
            .config(cfg)
            .mount(&clock)?,
    );

    let fd = cache.open("/data/burst.log", OpenFlags::RDWR | OpenFlags::CREATE, &clock)?;
    let payload = [0x42u8; 512];

    // Baseline: the same burst written synchronously — every write pays
    // the libc crossing plus its own pwb/pfence/psync sequence.
    let before = clock.now();
    for i in 0..64u64 {
        cache.pwrite(fd, &payload, i * 4096, &clock)?;
    }
    let sync_cost = clock.now() - before;
    cache.flush_log(&clock);

    // Queued: submit the burst into SQ 0, ring the doorbell once, reap.
    let mut qp = cache.queue_pair(0, &clock)?;
    let before = clock.now();
    for i in 64..128u64 {
        qp.submit_pwrite(fd, &payload, i * 4096, &clock)?;
    }
    qp.ring_doorbell(&clock);
    let completions = qp.reap(&clock);
    let queued_cost = clock.now() - before;
    assert!(completions.iter().all(|c| c.result.is_ok()));
    drop(qp); // releases the pair for another core

    println!("64 x 512B synchronous writes : {sync_cost}");
    println!("64 x 512B queued + 1 doorbell: {queued_cost}");
    println!(
        "amortization: {:.2}x (the doorbell pays one libc crossing and one fence pair \
         per stripe chunk for the whole burst)",
        sync_cost.as_secs_f64() / queued_cost.as_secs_f64()
    );

    let snap = cache.stats().snapshot();
    let q0 = &snap.per_queue[0];
    println!(
        "queue 0: {} submitted over {} doorbell(s), batch histogram {:?}, \
         cumulative reap lag {}ns",
        q0.sq_submitted, q0.sq_doorbells, q0.sq_batch_hist, q0.cq_reap_lag
    );

    cache.shutdown(&clock);
    Ok(())
}
