//! Layered backends under chaos: a fault+crypt+delay stack over Ext4+SSD,
//! inner I/O errors injected mid-drain, a power failure, and a recovery
//! through the rebuilt stack that converges to the acknowledged prefix —
//! plus tamper detection when the stored ciphertext is flipped behind the
//! cache's back.
//!
//! Run with: `cargo run --example layered_mount`

use std::error::Error;
use std::sync::Arc;

use nvcache_repro::blockdev::{SsdDevice, SsdProfile};
use nvcache_repro::nvcache::{Mount, NvCache, NvCacheConfig};
use nvcache_repro::nvmm::{NvDimm, NvRegion, NvmmProfile};
use nvcache_repro::simclock::{ActorClock, Bandwidth, SimTime};
use nvcache_repro::vfs::{
    CryptLayer, DelayLayer, DelayProfile, Ext4, Ext4Profile, FaultLayer, FileSystem, Layer,
    OpenFlags,
};

const KEY: u64 = 0x5EED_FACE_CAFE_F00D;
const WRITE: usize = 1024;

fn main() -> Result<(), Box<dyn Error>> {
    let clock = ActorClock::new();

    // One inner tier — Ext4 over an SSD — and three layers over it. The
    // cache proper never sees the stack: a layered backend is just another
    // FileSystem. Outermost first: the fault layer trips before the crypt
    // layer does any work, the delay layer charges the "device" latency.
    let inner: Arc<dyn FileSystem> = Arc::new(Ext4::new(
        "ext4+ssd",
        Arc::new(SsdDevice::new(SsdProfile::s4600())),
        Ext4Profile::default(),
    ));
    let fault = Arc::new(FaultLayer::failing_pwrites(40)); // chaos: 41st drain write fails
    let crypt = Arc::new(CryptLayer::new(KEY));
    let delay = Arc::new(DelayLayer::new(DelayProfile {
        pwrite: SimTime::from_micros(20),
        fsync: SimTime::from_micros(120),
        write_bandwidth: Some(Bandwidth::mib_per_sec(500.0)),
        ..DelayProfile::default()
    }));
    let stack = || -> Vec<Arc<dyn Layer>> {
        vec![
            Arc::clone(&fault) as Arc<dyn Layer>,
            Arc::clone(&crypt) as Arc<dyn Layer>,
            Arc::clone(&delay) as Arc<dyn Layer>,
        ]
    };

    let cfg = NvCacheConfig {
        nb_entries: 512,
        batch_min: 1, // drain eagerly, so the injected faults land mid-propagation
        batch_max: 16,
        fd_slots: 8,
        read_cache_pages: 4,
        ..NvCacheConfig::default()
    };
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::optane()));
    let cache = NvCache::builder(NvRegion::whole(Arc::clone(&dimm)))
        .backend_stack(stack(), Arc::clone(&inner))
        .config(cfg.clone())
        .mount(&clock)?;
    println!("mounted: {}", cache.name());

    // Stream writes until the fault layer poisons the stripe under us. Every
    // write that returned Ok is *acknowledged* — durable in NVMM, owed back.
    let fd = cache.open("/vault/journal", OpenFlags::RDWR | OpenFlags::CREATE, &clock)?;
    let mut acked = Vec::new();
    for i in 0..200u64 {
        let buf = [(i % 251 + 1) as u8; WRITE];
        match cache.pwrite(fd, &buf, i * WRITE as u64, &clock) {
            Ok(_) => acked.extend_from_slice(&buf),
            Err(e) => {
                println!("write {i} refused ({e}): the poisoned stripe fails fast");
                break;
            }
        }
    }
    // Give the eager drain a bounded window to trip the fault (or finish).
    for _ in 0..200 {
        if !cache.poisoned_stripes().is_empty() || cache.pending_entries() == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    println!(
        "acknowledged {} KiB; {} faults injected, {} stripes poisoned, {} entries pending",
        acked.len() / 1024,
        fault.faults_injected(),
        cache.poisoned_stripes().len(),
        cache.pending_entries()
    );

    // ---- power failure mid-drain ------------------------------------------
    cache.abort();
    drop(cache);
    let crashed = Arc::new(dimm.crash_and_restart());
    inner.simulate_power_failure();
    fault.disarm(); // the "device" came back healthy

    // ---- reboot: recover through the rebuilt stack (same key!) ------------
    let recovered = NvCache::builder(NvRegion::whole(Arc::clone(&crashed)))
        .backend_stack(stack(), Arc::clone(&inner))
        .config(cfg.clone())
        .mode(Mount::Recover)
        .mount(&clock)?;
    let report = recovered.recovery_report().expect("recover mode");
    println!(
        "recovery: {} entries replayed through crypt+delay ({} skipped)",
        report.entries_replayed, report.entries_skipped
    );

    let fd = recovered.open("/vault/journal", OpenFlags::RDONLY, &clock)?;
    let mut back = vec![0u8; acked.len()];
    recovered.pread(fd, &mut back, 0, &clock)?;
    assert_eq!(back, acked, "acknowledged prefix must survive the crash");
    println!("every acknowledged byte recovered ✓  ({:?})", crypt.stats());
    recovered.close(fd, &clock)?;
    recovered.shutdown(&clock);

    // What Ext4 actually stores is ciphertext — the plaintext never reaches
    // the inner tier.
    let raw = inner.open("/vault/journal", OpenFlags::RDWR, &clock)?;
    let mut stored = vec![0u8; 64];
    inner.pread(raw, &mut stored, 0, &clock)?;
    assert_ne!(&stored[..], &acked[..64], "inner tier must hold ciphertext, not plaintext");
    println!("inner tier holds ciphertext ✓");

    // Flip one stored byte behind everyone's back…
    let mut b = [0u8; 1];
    inner.pread(raw, &mut b, 4321, &clock)?;
    inner.pwrite(raw, &[b[0] ^ 0xA5], 4321, &clock)?;
    inner.close(raw, &clock)?;

    // …and the next mount refuses the tampered page while the rest reads clean.
    let remounted = NvCache::builder(NvRegion::whole(crashed))
        .backend_stack(stack(), inner)
        .config(cfg)
        .mode(Mount::Recover)
        .mount(&clock)?;
    let fd = remounted.open("/vault/journal", OpenFlags::RDONLY, &clock)?;
    let mut page = vec![0u8; 4096];
    let tampered = remounted.pread(fd, &mut page, 4096, &clock);
    assert!(tampered.is_err(), "tampered page must fail authentication");
    assert!(crypt.stats().tamper_detected >= 1);
    remounted.pread(fd, &mut page, 0, &clock)?;
    assert_eq!(&page[..], &acked[..4096], "untampered pages still read clean");
    println!(
        "tampered page rejected, clean pages served ✓  ({} delayed ops, {} injected)",
        delay.stats().ops_delayed,
        delay.stats().injected
    );
    remounted.shutdown(&clock);
    Ok(())
}
