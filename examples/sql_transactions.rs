//! SQLite-style synchronous transactions over three storage stacks: the
//! journal + double-fsync commit dance is where NVCache's no-op `fsync`
//! pays off most (paper Fig. 3, SQLite columns).
//!
//! Run with: `cargo run --example sql_transactions`

use std::error::Error;
use std::sync::Arc;

use nvcache_repro::blockdev::{SsdDevice, SsdProfile};
use nvcache_repro::nvcache::{NvCache, NvCacheConfig};
use nvcache_repro::nvmm::{NvDimm, NvRegion, NvmmProfile};
use nvcache_repro::simclock::ActorClock;
use nvcache_repro::sqlight::{SqlightDb, SqlightOptions};
use nvcache_repro::vfs::{Ext4, Ext4Profile, FileSystem, NovaFs, NovaProfile};

fn run_txns(name: &str, fs: Arc<dyn FileSystem>) -> Result<(), Box<dyn Error>> {
    let clock = ActorClock::new();
    let db = SqlightDb::open(fs, "/bank.db", SqlightOptions::default(), &clock)?;
    db.create_table("accounts", &clock)?;

    let txns = 500i64;
    let start = clock.now();
    for i in 0..txns {
        // One synchronous transaction per transfer, like an OLTP app.
        db.begin()?;
        db.insert("accounts", i, format!("balance-{i}").as_bytes(), &clock)?;
        db.commit(&clock)?;
    }
    let per_txn = (clock.now() - start) / txns as u64;
    assert_eq!(db.scan("accounts", &clock)?.len(), txns as usize);
    println!("  {name:<14} {per_txn} per committed transaction");
    db.close(&clock)?;
    Ok(())
}

fn main() -> Result<(), Box<dyn Error>> {
    println!("500 synchronous OLTP transactions (journal commit per txn):");

    // Plain SSD.
    let ssd = Arc::new(SsdDevice::new(SsdProfile::s4600()));
    run_txns("SSD", Arc::new(Ext4::new("ext4+ssd", ssd, Ext4Profile::default())))?;

    // NOVA in NVMM.
    let dimm = Arc::new(NvDimm::new(512 << 20, NvmmProfile::optane()));
    run_txns("NOVA", Arc::new(NovaFs::new(NvRegion::whole(dimm), NovaProfile::default())))?;

    // NVCache in front of the SSD.
    let clock = ActorClock::new();
    let ssd = Arc::new(SsdDevice::new(SsdProfile::s4600()));
    let ext4: Arc<dyn FileSystem> = Arc::new(Ext4::new("ext4+ssd", ssd, Ext4Profile::default()));
    let cfg = NvCacheConfig::default().scaled(256);
    let log = Arc::new(NvDimm::new(
        cfg.required_nvmm_bytes(),
        NvmmProfile::optane().without_durability_tracking(),
    ));
    let cache =
        Arc::new(NvCache::builder(NvRegion::whole(log)).backend(ext4).config(cfg).mount(&clock)?);
    run_txns("NVCache+SSD", Arc::clone(&cache) as Arc<dyn FileSystem>)?;
    cache.shutdown(&clock);
    Ok(())
}
