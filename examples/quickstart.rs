//! Quickstart: put NVCache in front of a simulated SSD and watch a write
//! become durable at NVMM speed while `fsync` turns into a no-op.
//!
//! Run with: `cargo run --example quickstart`

use std::error::Error;
use std::sync::Arc;

use nvcache_repro::blockdev::{SsdDevice, SsdProfile};
use nvcache_repro::nvcache::{NvCache, NvCacheConfig};
use nvcache_repro::nvmm::{NvDimm, NvRegion, NvmmProfile};
use nvcache_repro::simclock::ActorClock;
use nvcache_repro::vfs::{Ext4, Ext4Profile, FileSystem, OpenFlags};

fn main() -> Result<(), Box<dyn Error>> {
    let clock = ActorClock::new();

    // The paper's deployment: an SSD formatted with Ext4...
    let ssd = Arc::new(SsdDevice::new(SsdProfile::s4600()));
    let ext4: Arc<dyn FileSystem> = Arc::new(Ext4::new("ext4+ssd", ssd, Ext4Profile::default()));

    // ...boosted by NVCache: a write log in NVMM (scaled to 1/256 of the
    // paper's 64 GiB here) in front of the kernel I/O stack. The mount
    // stack is assembled with the builder: region, backend(s), config, go.
    let cfg = NvCacheConfig::default().scaled(256);
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::optane()));
    let cache = NvCache::builder(NvRegion::whole(dimm))
        .backend(ext4)
        .config(cfg)
        .mount(&clock)?;

    // A legacy application sees plain POSIX.
    let fd = cache.open("/data/app.log", OpenFlags::RDWR | OpenFlags::CREATE, &clock)?;

    let before = clock.now();
    cache.pwrite(fd, b"this write is durable when pwrite returns", 0, &clock)?;
    let write_latency = clock.now() - before;

    let before = clock.now();
    cache.fsync(fd, &clock)?; // Table III: no-op
    let fsync_latency = clock.now() - before;

    let mut buf = [0u8; 42];
    cache.pread(fd, &mut buf, 0, &clock)?;

    println!("write latency : {write_latency}  (synchronously durable in NVMM)");
    println!("fsync latency : {fsync_latency}  (no-op by design)");
    println!("read-back     : {}", String::from_utf8_lossy(&buf));
    println!("pending log entries before drain: {}", cache.pending_entries());

    // Push everything to the SSD and stop the cleanup thread.
    cache.close(fd, &clock)?;
    cache.shutdown(&clock);
    println!("pending log entries after shutdown: {}", cache.pending_entries());
    println!("stats: {:#?}", cache.stats().snapshot());
    Ok(())
}
