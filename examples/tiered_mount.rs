//! Multi-backend tiering: one NVCache mount spreading files over two legacy
//! file systems — hot paths on NOVA (NVMM), cold bulk on Ext4+SSD — with a
//! crash in between to show recovery replaying every acknowledged write to
//! the tier that acknowledged it.
//!
//! Run with: `cargo run --example tiered_mount`

use std::error::Error;
use std::sync::Arc;

use nvcache_repro::blockdev::{SsdDevice, SsdProfile};
use nvcache_repro::nvcache::{Mount, NvCache, NvCacheConfig, PathPrefixRouter, Router};
use nvcache_repro::nvmm::{NvDimm, NvRegion, NvmmProfile};
use nvcache_repro::simclock::ActorClock;
use nvcache_repro::vfs::{Ext4, Ext4Profile, FileSystem, NovaFs, NovaProfile, OpenFlags};

fn main() -> Result<(), Box<dyn Error>> {
    let clock = ActorClock::new();

    // Two tiers: NOVA in NVMM for hot files, Ext4 over an SSD for bulk.
    let nova_dimm = Arc::new(NvDimm::new(128 << 20, NvmmProfile::optane()));
    let hot: Arc<dyn FileSystem> =
        Arc::new(NovaFs::new(NvRegion::whole(nova_dimm), NovaProfile::default()));
    let ssd = Arc::new(SsdDevice::new(SsdProfile::s4600()));
    let bulk: Arc<dyn FileSystem> = Arc::new(Ext4::new("ext4+ssd", ssd, Ext4Profile::default()));

    // One NVCache mount over both, routed by path prefix: /hot/** lands on
    // NOVA (tier 1), everything else on the SSD (tier 0). The log itself
    // lives in its own NVMM region, as usual.
    let cfg = NvCacheConfig {
        nb_entries: 8192,
        batch_min: usize::MAX >> 1, // park the drain: the crash finds everything in the log
        batch_max: usize::MAX >> 1,
        ..NvCacheConfig::tiny()
    };
    let log_dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::optane()));
    let router: Arc<dyn Router> = Arc::new(PathPrefixRouter::new(vec![("/hot".into(), 1)], 0));
    let cache = NvCache::builder(NvRegion::whole(Arc::clone(&log_dimm)))
        .backends(Arc::clone(&router), vec![Arc::clone(&bulk), Arc::clone(&hot)])
        .config(cfg.clone())
        .mount(&clock)?;
    println!("mounted: {}", cache.name());

    let wal = cache.open("/hot/wal.log", OpenFlags::RDWR | OpenFlags::CREATE, &clock)?;
    let blob = cache.open("/archive/blob", OpenFlags::RDWR | OpenFlags::CREATE, &clock)?;
    for i in 0..64u64 {
        cache.pwrite(wal, format!("txn-{i:04}").as_bytes(), i * 8, &clock)?;
        cache.pwrite(blob, &[i as u8 + 1; 512], i * 512, &clock)?;
    }
    println!(
        "acknowledged 128 writes across two tiers; {} entries pending in NVMM",
        cache.pending_entries()
    );

    // ---- power failure ---------------------------------------------------
    cache.abort();
    drop(cache);
    let restarted = Arc::new(log_dimm.crash_and_restart());

    // ---- reboot + tiered recovery ----------------------------------------
    let recovered = NvCache::builder(NvRegion::whole(restarted))
        .backends(router, vec![Arc::clone(&bulk), Arc::clone(&hot)])
        .config(cfg)
        .mode(Mount::Recover)
        .mount(&clock)?;
    let report = recovered.recovery_report().expect("recover mode");
    println!(
        "recovery: {} entries replayed onto {} tiers ({} files)",
        report.entries_replayed, report.backends_touched, report.files_reopened
    );

    // Each tier holds exactly its own files — resolved from the fd table's
    // persisted backend ids, not by re-routing.
    let wal_on_hot = hot.stat("/hot/wal.log", &clock)?.size;
    let blob_on_bulk = bulk.stat("/archive/blob", &clock)?.size;
    assert!(hot.stat("/archive/blob", &clock).is_err(), "bulk data must not be on NOVA");
    assert!(bulk.stat("/hot/wal.log", &clock).is_err(), "the WAL must not be on the SSD");
    println!("NOVA tier   : /hot/wal.log   ({wal_on_hot} bytes)");
    println!("SSD tier    : /archive/blob  ({blob_on_bulk} bytes)");

    let fd = recovered.open("/hot/wal.log", OpenFlags::RDONLY, &clock)?;
    let mut buf = [0u8; 8];
    recovered.pread(fd, &mut buf, 63 * 8, &clock)?;
    assert_eq!(&buf, b"txn-0063");
    println!("last acknowledged transaction survived on its tier ✓");
    recovered.shutdown(&clock);
    Ok(())
}
