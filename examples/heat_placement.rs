//! Heat-driven auto-placement: a two-tier mount whose router never places
//! anything on the fast tier, with a `HeatPolicy` that promotes the hot
//! working set there anyway — then demotes it again once it cools, and
//! holds a fast-tier byte budget by evicting the coldest resident.
//!
//! Run with: `cargo run --example heat_placement`

use std::error::Error;
use std::sync::Arc;

use nvcache_repro::nvcache::{
    HeatPolicy, MigrationPolicy, NvCache, NvCacheConfig, PathPrefixRouter, Router,
};
use nvcache_repro::nvmm::{NvDimm, NvRegion, NvmmProfile};
use nvcache_repro::simclock::{ActorClock, SimTime};
use nvcache_repro::vfs::{FileSystem, MemFs, OpenFlags};

fn main() -> Result<(), Box<dyn Error>> {
    let clock = ActorClock::new();
    let bulk: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let fast: Arc<dyn FileSystem> = Arc::new(MemFs::new());

    // Promote above 4 units of decayed heat, demote below 1, heat halving
    // every 10 virtual seconds, and at most 2 KiB of promoted payload on
    // the fast tier.
    let policy = HeatPolicy::new(1, 4.0, 1.0, SimTime::from_secs(10)).with_budget(2048);
    let cfg =
        NvCacheConfig { nb_entries: 4096, batch_min: 1, batch_max: 64, ..NvCacheConfig::tiny() }
            .with_migration(MigrationPolicy::OnDemand)
            .with_placement(Arc::new(policy));
    let log_dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::optane()));

    // The router sends every path to the bulk tier: only temperature can
    // ever reach the fast one.
    let all_cold: Arc<dyn Router> = Arc::new(PathPrefixRouter::new(vec![], 0));
    let cache = NvCache::builder(NvRegion::whole(log_dimm))
        .backends(all_cold, vec![Arc::clone(&bulk), Arc::clone(&fast)])
        .config(cfg)
        .mount(&clock)?;

    // Four 1 KiB segments; drain and close so they become migratable.
    let mut fds = Vec::new();
    for i in 0..4u32 {
        let fd = cache.open(&format!("/seg/{i}"), OpenFlags::RDWR | OpenFlags::CREATE, &clock)?;
        cache.pwrite(fd, &[i as u8 + 1; 1024], 0, &clock)?;
        fds.push(fd);
    }
    cache.flush_log(&clock);
    for fd in fds {
        cache.close(fd, &clock)?;
    }
    println!("wrote /seg/0..3 — the router put all four on the bulk tier");

    // Heat three of the four up, with /seg/0 clearly the hottest.
    let mut buf = [0u8; 1024];
    for (i, reads) in [(0u32, 12usize), (1, 8), (2, 6)] {
        let fd = cache.open(&format!("/seg/{i}"), OpenFlags::RDONLY, &clock)?;
        for _ in 0..reads {
            cache.pread(fd, &mut buf, 0, &clock)?;
        }
        cache.close(fd, &clock)?;
    }

    // Sweep: three files cross the promote threshold, but the 2 KiB budget
    // seats only the two hottest — the coldest candidate is never moved.
    let report = cache.rebalance(&clock)?;
    let snap = cache.stats().snapshot();
    println!(
        "sweep 1: {} promoted, {} demoted ({} bytes now on the fast tier)",
        report.files_promoted, report.files_demoted, snap.fast_tier_bytes
    );
    assert_eq!(report.files_promoted, 2, "the 2 KiB budget seats exactly two 1 KiB files");
    assert!(fast.stat("/seg/0", &clock).is_ok(), "hottest segment promoted");
    assert!(fast.stat("/seg/1", &clock).is_ok(), "second-hottest promoted");
    assert!(bulk.stat("/seg/2", &clock).is_ok(), "budget evicted the coldest candidate");

    // The merged namespace is unchanged — promoted files stay reachable.
    assert_eq!(cache.stat("/seg/0", &clock)?.size, 1024);

    // Let the temperature halve a few times: everything cools below the
    // demote threshold and drains back to the router baseline.
    clock.advance(SimTime::from_secs(60));
    let report = cache.rebalance(&clock)?;
    let snap = cache.stats().snapshot();
    println!(
        "sweep 2 (60 s later): {} promoted, {} demoted ({} bytes on the fast tier)",
        report.files_promoted, report.files_demoted, snap.fast_tier_bytes
    );
    assert_eq!(report.files_demoted, 2, "cooled segments fall back to the bulk tier");
    assert_eq!(snap.fast_tier_bytes, 0);
    assert!(bulk.stat("/seg/0", &clock).is_ok(), "back on the baseline tier");

    println!(
        "totals: files_promoted = {}, files_demoted = {}, files_migrated = {}",
        snap.files_promoted, snap.files_demoted, snap.files_migrated
    );
    cache.shutdown(&clock);
    println!("heat-driven placement converged both ways — OK");
    Ok(())
}
