//! A RocksDB-style ingest (the paper's motivating workload): the same
//! unmodified LSM key-value store, once over a plain SSD and once boosted by
//! NVCache — reproducing the headline "synchronous writes at NVMM speed
//! without giving up SSD capacity".
//!
//! Run with: `cargo run --example kv_ingest`

use std::error::Error;
use std::sync::Arc;

use nvcache_repro::blockdev::{SsdDevice, SsdProfile};
use nvcache_repro::nvcache::{NvCache, NvCacheConfig};
use nvcache_repro::nvmm::{NvDimm, NvRegion, NvmmProfile};
use nvcache_repro::rocklet::{
    bench_key, run_db_bench, BenchOptions, RockBench, RockletDb, RockletOptions,
};
use nvcache_repro::simclock::ActorClock;
use nvcache_repro::vfs::{Ext4, Ext4Profile, FileSystem};

fn plain_ssd() -> Arc<dyn FileSystem> {
    let ssd = Arc::new(SsdDevice::new(SsdProfile::s4600()));
    Arc::new(Ext4::new("ext4+ssd", ssd, Ext4Profile::default()))
}

fn main() -> Result<(), Box<dyn Error>> {
    let ops = 10_000u64;

    // --- Baseline: the store straight on the SSD -------------------------
    let clock = ActorClock::new();
    let db = RockletDb::open(plain_ssd(), "/db", RockletOptions::default(), &clock)?;
    let opts = BenchOptions { num: ops, sync: true, ..BenchOptions::default() };
    let base = run_db_bench(&db, RockBench::FillRandom, &opts, &clock)?;

    // --- Same store, same code, NVCache in front -------------------------
    let clock = ActorClock::new();
    let cfg = NvCacheConfig::default().scaled(64);
    let dimm = Arc::new(NvDimm::new(
        cfg.required_nvmm_bytes(),
        NvmmProfile::optane().without_durability_tracking(),
    ));
    let cache = Arc::new(
        NvCache::builder(NvRegion::whole(dimm))
            .backend(plain_ssd())
            .config(cfg)
            .mount(&clock)?,
    );
    let boosted_fs: Arc<dyn FileSystem> = Arc::clone(&cache) as Arc<dyn FileSystem>;
    let db = RockletDb::open(boosted_fs, "/db", RockletOptions::default(), &clock)?;
    let boosted = run_db_bench(&db, RockBench::FillRandom, &opts, &clock)?;

    // Reads still see the ingested data (fillrandom writes a random subset
    // of the keyspace, so probe until one hits).
    let found = (0..ops).any(|i| matches!(db.get(&bench_key(i), &clock), Ok(Some(_))));
    assert!(found || ops == 0, "boosted store lost the ingested data");

    println!("fillrandom, {ops} synchronous writes:");
    println!("  plain SSD    : {:>8.1} µs/op", base.mean_latency_us);
    println!("  NVCache+SSD  : {:>8.1} µs/op", boosted.mean_latency_us);
    println!(
        "  speedup      : {:>8.1}x  (paper Fig. 3: ≥1.9x over SSD-backed baselines)",
        base.mean_latency_us / boosted.mean_latency_us
    );
    cache.shutdown(&clock);
    Ok(())
}
