//! Tier rebalancing: a routing-policy change leaves files misplaced after a
//! crash; one repair-mode recovery re-homes them all through the crash-safe
//! copy → stamp → unlink migration protocol, and the cross-tier-rename flag
//! turns EXDEV into a migrate-then-rename.
//!
//! Run with: `cargo run --example tier_rebalance`

use std::error::Error;
use std::sync::Arc;

use nvcache_repro::nvcache::{
    MigrationPolicy, Mount, NvCache, NvCacheConfig, PathPrefixRouter, Router,
};
use nvcache_repro::nvmm::{NvDimm, NvRegion, NvmmProfile};
use nvcache_repro::simclock::ActorClock;
use nvcache_repro::vfs::{FileSystem, IoError, MemFs, OpenFlags};

fn main() -> Result<(), Box<dyn Error>> {
    let clock = ActorClock::new();
    let bulk: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let fast: Arc<dyn FileSystem> = Arc::new(MemFs::new());

    let cfg = NvCacheConfig {
        nb_entries: 4096,
        batch_min: usize::MAX >> 1, // park the drain: the crash finds everything in the log
        batch_max: usize::MAX >> 1,
        ..NvCacheConfig::tiny()
    }
    .with_migration(MigrationPolicy::OnDemand)
    .with_cross_tier_rename(true);
    let log_dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::optane()));

    // ---- yesterday's deployment: everything on the bulk tier --------------
    let cold_everything: Arc<dyn Router> = Arc::new(PathPrefixRouter::new(vec![], 0));
    let cache = NvCache::builder(NvRegion::whole(Arc::clone(&log_dimm)))
        .backends(cold_everything, vec![Arc::clone(&bulk), Arc::clone(&fast)])
        .config(cfg.clone())
        .mount(&clock)?;
    for i in 0..8u32 {
        let fd =
            cache.open(&format!("/hot/seg{i}"), OpenFlags::RDWR | OpenFlags::CREATE, &clock)?;
        cache.pwrite(fd, format!("segment {i} payload").as_bytes(), 0, &clock)?;
    }
    println!("wrote 8 files under /hot, all placed on the bulk tier — power failure");
    cache.abort();
    drop(cache);
    let restarted = Arc::new(log_dimm.crash_and_restart());

    // ---- today's policy: /hot/** belongs on the fast tier -----------------
    // Mount::RecoverRepair replays every acknowledged byte to the tier that
    // acknowledged it, then re-homes the misplaced files to the router's
    // current placement — crash-safe at every step.
    let hot_policy: Arc<dyn Router> = Arc::new(PathPrefixRouter::new(vec![("/hot".into(), 1)], 0));
    let cache = NvCache::builder(NvRegion::whole(restarted))
        .backends(hot_policy, vec![Arc::clone(&bulk), Arc::clone(&fast)])
        .config(cfg)
        .mode(Mount::RecoverRepair)
        .mount(&clock)?;
    let report = cache.recovery_report().expect("recover mode");
    println!(
        "repair recovery: {} entries replayed, {} files re-homed, {} still misplaced",
        report.entries_replayed, report.files_repaired, report.files_misplaced
    );
    assert_eq!(report.files_repaired, 8);
    assert_eq!(report.files_misplaced, 0);

    // The bytes moved tier without changing value, and the mount sees them
    // where the router expects them.
    let fd = cache.open("/hot/seg3", OpenFlags::RDONLY, &clock)?;
    let mut buf = [0u8; 17];
    cache.pread(fd, &mut buf, 0, &clock)?;
    assert_eq!(&buf, b"segment 3 payload");
    cache.close(fd, &clock)?;
    assert!(fast.stat("/hot/seg3", &clock).is_ok(), "re-homed to the fast tier");
    assert!(matches!(bulk.stat("/hot/seg3", &clock), Err(IoError::NotFound(_))));
    println!("byte oracle: /hot/seg3 intact on the fast tier, gone from bulk ✓");

    // ---- cross-tier rename behind the flag --------------------------------
    // Demoting a segment to the bulk tier is a rename across backends: with
    // `cross_tier_rename` it runs as a journaled migrate-then-rename
    // instead of failing with EXDEV.
    cache.rename("/hot/seg7", "/archive/seg7", &clock)?;
    assert!(bulk.stat("/archive/seg7", &clock).is_ok());
    assert!(matches!(fast.stat("/hot/seg7", &clock), Err(IoError::NotFound(_))));
    let snap = cache.stats().snapshot();
    println!(
        "cross-tier rename demoted /hot/seg7 → /archive/seg7 \
         (files_migrated = {}, migration_bytes = {})",
        snap.files_migrated, snap.migration_bytes
    );
    cache.shutdown(&clock);
    println!("tier rebalancing round-trip complete ✓");
    Ok(())
}
