//! Crash injection end to end: acknowledge writes, pull the power, lose the
//! kernel's volatile state, then let NVCache's recovery replay the NVMM log
//! — every acknowledged write survives, every torn write is discarded.
//!
//! Run with: `cargo run --example crash_recovery`

use std::error::Error;
use std::sync::Arc;

use nvcache_repro::blockdev::{SsdDevice, SsdProfile};
use nvcache_repro::nvcache::{Mount, NvCache, NvCacheConfig};
use nvcache_repro::nvmm::{NvDimm, NvRegion, NvmmProfile};
use nvcache_repro::simclock::ActorClock;
use nvcache_repro::vfs::{Ext4, Ext4Profile, FileSystem, OpenFlags};

fn main() -> Result<(), Box<dyn Error>> {
    let clock = ActorClock::new();
    // Cleanup batching set sky-high: nothing reaches the disk before the
    // crash, so every byte must come back from the NVMM log alone.
    let cfg = NvCacheConfig {
        nb_entries: 4096,
        batch_min: usize::MAX >> 1,
        batch_max: usize::MAX >> 1,
        ..NvCacheConfig::tiny()
    };
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::optane()));
    let ssd = Arc::new(SsdDevice::new(SsdProfile::s4600()));
    let inner: Arc<dyn FileSystem> = Arc::new(Ext4::new("ext4+ssd", ssd, Ext4Profile::default()));
    let cache = NvCache::builder(NvRegion::whole(Arc::clone(&dimm)))
        .backend(Arc::clone(&inner))
        .config(cfg.clone())
        .mount(&clock)?;

    let fd = cache.open("/ledger", OpenFlags::RDWR | OpenFlags::CREATE, &clock)?;
    let mut acknowledged = Vec::new();
    for i in 0..200u64 {
        let record = format!("entry-{i:04}");
        cache.pwrite(fd, record.as_bytes(), i * 16, &clock)?;
        acknowledged.push((i * 16, record));
    }
    println!(
        "acknowledged {} writes; {} entries pending in NVMM",
        acknowledged.len(),
        cache.pending_entries()
    );

    // ---- power failure ---------------------------------------------------
    cache.abort(); // the process dies; nothing is drained
    drop(cache);
    let restarted = Arc::new(dimm.crash_and_restart()); // un-flushed lines are gone
    inner.simulate_power_failure(); // the kernel page cache is gone too

    // ---- reboot + recovery ------------------------------------------------
    let recovered = NvCache::builder(NvRegion::whole(restarted))
        .backend(Arc::clone(&inner))
        .config(cfg)
        .mode(Mount::Recover)
        .mount(&clock)?;
    let report = recovered.recovery_report().expect("recover mode");
    println!(
        "recovery: {} entries replayed ({} bytes), {} files reopened",
        report.entries_replayed, report.bytes_replayed, report.files_reopened
    );

    let fd = recovered.open("/ledger", OpenFlags::RDONLY, &clock)?;
    let mut buf = [0u8; 10];
    for (off, expected) in &acknowledged {
        recovered.pread(fd, &mut buf, *off, &clock)?;
        assert_eq!(&buf, expected.as_bytes(), "lost acknowledged write at {off}");
    }
    println!("all {} acknowledged writes survived the crash ✓", acknowledged.len());
    recovered.shutdown(&clock);
    Ok(())
}
