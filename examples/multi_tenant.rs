//! Three tenants on one tiered mount: a WAL-heavy LSM store, a
//! transactional SQL store and a read-hot file scanner share an NVCache
//! whose router parks everything on a slow bulk tier. A `HeatPolicy`
//! watches per-file temperature; after the first traffic phase a rebalance
//! sweep promotes the scanner's hot files to the fast tier, and replaying
//! the *same* seeded trace shows its read p99 collapse.
//!
//! Run with: `cargo run --example multi_tenant`

use std::error::Error;
use std::sync::Arc;

use nvcache_repro::nvcache::{
    HeatPolicy, LayeredTier, MigrationPolicy, NvCache, NvCacheConfig, PathPrefixRouter, Router,
};
use nvcache_repro::nvmm::{NvDimm, NvRegion, NvmmProfile};
use nvcache_repro::simclock::{ActorClock, SimTime};
use nvcache_repro::traffic::{
    Arrival, EngineConfig, OpMix, SizeDist, Tail, TenantKind, TenantSpec, TrafficTarget,
};
use nvcache_repro::vfs::{DelayLayer, DelayProfile, FileSystem, Layer, MemFs};

fn tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec {
            name: "rock-wal".into(),
            prefix: "/rock".into(),
            kind: TenantKind::Rocklet { keys: 48 },
            mix: OpMix { read_pct: 20, fsync_every: 1 },
            arrival: Arrival::ClosedLoop { concurrency: 1 },
            theta: 0.9,
            ops: 120,
            size: SizeDist::Fixed(256),
        },
        TenantSpec {
            name: "sql-txn".into(),
            prefix: "/sql".into(),
            kind: TenantKind::Sqlight { rows: 32 },
            mix: OpMix { read_pct: 50, fsync_every: 1 },
            arrival: Arrival::ClosedLoop { concurrency: 1 },
            theta: 0.7,
            ops: 100,
            size: SizeDist::Uniform { min: 64, max: 256 },
        },
        // The hot tenant: a small, heavily re-read working set behind the
        // slow tier — exactly what heat placement should rescue.
        TenantSpec {
            name: "scan".into(),
            prefix: "/scan".into(),
            kind: TenantKind::RawFs { files: 4, file_size: 64 << 10 },
            mix: OpMix { read_pct: 100, fsync_every: 0 },
            arrival: Arrival::ClosedLoop { concurrency: 2 },
            theta: 0.9,
            ops: 300,
            size: SizeDist::Fixed(4096),
        },
    ]
}

fn main() -> Result<(), Box<dyn Error>> {
    let clock = ActorClock::new();

    // Bulk tier: RAM-backed but charged like a slow device (300 µs reads).
    // Fast tier: plain RAM. The router places everything on the bulk tier;
    // only the heat policy can promote files to the fast one.
    let slow_reads = DelayProfile {
        pread: SimTime::from_micros(300),
        pwrite: SimTime::from_micros(50),
        ..DelayProfile::default()
    };
    let bulk: LayeredTier = (
        vec![Arc::new(DelayLayer::new(slow_reads)) as Arc<dyn Layer>],
        Arc::new(MemFs::new()) as Arc<dyn FileSystem>,
    );
    let fast: LayeredTier = (Vec::new(), Arc::new(MemFs::new()) as Arc<dyn FileSystem>);
    let all_cold: Arc<dyn Router> = Arc::new(PathPrefixRouter::new(vec![], 0));

    // Promote above 4 units of decayed heat, demote below 1, half-life
    // 10 s, with room for the whole hot working set. The tiny read cache
    // (16 pages) forces most scanner reads through to the tier, so the
    // placement decision is what moves the tail.
    let policy = HeatPolicy::new(1, 4.0, 1.0, SimTime::from_secs(10)).with_budget(1 << 20);
    let cfg = NvCacheConfig {
        nb_entries: 8 * 1024,
        batch_min: usize::MAX >> 1,
        batch_max: usize::MAX >> 1,
        fd_slots: 512,
        ..NvCacheConfig::default()
    }
    .with_read_cache_pages(16)
    .with_migration(MigrationPolicy::OnDemand)
    .with_placement(Arc::new(policy));
    let log_dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::optane()));
    let cache = Arc::new(
        NvCache::builder(NvRegion::whole(log_dimm))
            .backends_stacked(all_cold, vec![bulk, fast])
            .config(cfg)
            .mount(&clock)?,
    );
    let target = TrafficTarget::nvcache(Arc::clone(&cache));

    // ---- Phase 1: everything lands on the slow bulk tier. ----
    let specs = tenants();
    let cfg1 = EngineConfig { seed: 11, flush_every: 128, start: clock.now() };
    let phase1 = nvcache_repro::traffic::run(&target, &specs, &cfg1)?;
    let scan1 = &phase1.tenants[2];
    let before = Tail::of(&scan1.reads);
    println!("phase 1 (cold tiers):");
    for t in &phase1.tenants {
        let tail = t.tail();
        println!(
            "  {:8} {:4} ops, p50 {:8.1} µs, p99 {:8.1} µs",
            t.name,
            t.ops,
            tail.p50.as_micros_f64(),
            tail.p99.as_micros_f64()
        );
    }

    // ---- Rebalance: the scanner's files crossed the promote threshold. ----
    let sweep_clock = ActorClock::starting_at(phase1.final_clock);
    let report = cache.rebalance(&sweep_clock)?;
    println!(
        "rebalance: {} promoted, {} demoted ({} bytes on the fast tier)",
        report.files_promoted,
        report.files_demoted,
        cache.stats().snapshot().fast_tier_bytes
    );
    assert!(report.files_promoted > 0, "the hot scanner files must cross the promote threshold");

    // ---- Phase 2: identical seed ⇒ identical trace, warmer placement. ----
    let cfg2 = EngineConfig { seed: 11, flush_every: 128, start: sweep_clock.now() };
    let phase2 = nvcache_repro::traffic::run(&target, &specs, &cfg2)?;
    let scan2 = &phase2.tenants[2];
    let after = Tail::of(&scan2.reads);
    println!("phase 2 (hot files promoted):");
    println!(
        "  scan read p99: {:.1} µs -> {:.1} µs (p50 {:.1} -> {:.1})",
        before.p99.as_micros_f64(),
        after.p99.as_micros_f64(),
        before.p50.as_micros_f64(),
        after.p50.as_micros_f64()
    );
    assert_eq!(scan1.ops, scan2.ops, "same seed must replay the same trace");
    assert!(
        after.p99 < before.p99,
        "promoting the hot tenant's files must improve its read p99 \
         ({:?} -> {:?})",
        before.p99,
        after.p99
    );

    cache.shutdown(&clock);
    println!("hot tenant rescued by heat placement — OK");
    Ok(())
}
