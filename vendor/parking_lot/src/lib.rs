//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to a crates.io mirror, so this crate
//! implements — on top of `std::sync` — exactly the API subset the workspace
//! uses: [`Mutex`], [`RwLock`] and [`Condvar`] with `parking_lot` semantics
//! (no lock poisoning, guards that can be waited on by reference).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{PoisonError, TryLockError};
use std::time::Duration;

/// A mutual-exclusion primitive (non-poisoning `std::sync::Mutex` wrapper).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard of a [`Mutex`].
///
/// Holds an `Option` internally so a [`Condvar`] can temporarily take the
/// underlying std guard by value during a wait; the option is always `Some`
/// outside `Condvar` internals.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present outside condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present outside condvar wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock (non-poisoning `std::sync::RwLock` wrapper).
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-access RAII guard of an [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-access RAII guard of an [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Attempts shared access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(TryLockError::Poisoned(p)) => Some(RwLockReadGuard(p.into_inner())),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(TryLockError::Poisoned(p)) => Some(RwLockWriteGuard(p.into_inner())),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Outcome of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with this crate's [`MutexGuard`] by reference.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Blocks until notified or until `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let (inner, res) =
            self.0.wait_timeout(inner, timeout).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(7);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 14);
            assert!(l.try_write().is_none());
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notify_crosses_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait_for(&mut done, Duration::from_millis(1));
        }
        h.join().unwrap();
    }
}
