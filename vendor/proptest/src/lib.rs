//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro with `#![proptest_config(..)]`, range/tuple/`Just`
//! strategies, [`Strategy::prop_map`], [`prop_oneof!`],
//! [`collection::vec`], [`any`], and the `prop_assert*` macros.
//!
//! Cases are generated from a deterministic per-test RNG (seeded from the
//! test path and case index, or from `PROPTEST_SEED` when set). There is no
//! shrinking: on failure the offending inputs are printed verbatim.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Any, BoxedStrategy, Just, Map, Strategy, Union, VecStrategy};
pub use test_runner::{ProptestConfig, TestRng};

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs `body` for `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case as u64,
                    );
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                    let rendered: Vec<String> = vec![
                        $(format!(concat!("  ", stringify!($arg), " = {:?}"), &$arg)),+
                    ];
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let Err(cause) = outcome {
                        eprintln!(
                            "proptest: {} failed at case {}/{} with inputs:",
                            stringify!($name),
                            case,
                            cfg.cases,
                        );
                        for line in &rendered {
                            eprintln!("{line}");
                        }
                        ::std::panic::resume_unwind(cause);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*
        }
    };
}

/// Chooses uniformly among the given strategies (all yielding one value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!(concat!("assertion failed: ", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!("assertion failed: `{:?}` != `{:?}`", l, r);
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l,
                r,
                format_args!($($fmt)+),
            );
        }
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            panic!("assertion failed: `{:?}` == `{:?}`", l, r);
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            panic!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                l,
                r,
                format_args!($($fmt)+),
            );
        }
    }};
}
