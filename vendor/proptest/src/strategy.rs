//! Value-generation strategies for the [`proptest!`](crate::proptest) macro.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (for heterogeneous collections like
    /// [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among type-erased strategies ([`prop_oneof!`](crate::prop_oneof)).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u128 + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E), (A, B, C, D, E, F));

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws one value over the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Whole-domain strategy for `T` (`any::<u8>()`).
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Builds the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy for vectors with lengths drawn from a range
/// ([`collection::vec`](crate::collection::vec)).
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.clone().generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy::tests", 0)
    }

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let strat = (0u8..4, 10u16..20).prop_map(|(a, b)| a as u32 + b as u32);
        let mut r = rng();
        for _ in 0..200 {
            let v = strat.generate(&mut r);
            assert!((10..24).contains(&v));
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let strat = crate::prop_oneof![Just(1u8), Just(2u8), (5u8..7).prop_map(|v| v)];
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(strat.generate(&mut r));
        }
        assert!(seen.contains(&1) && seen.contains(&2) && (seen.contains(&5) || seen.contains(&6)));
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        let strat = crate::collection::vec(any::<u8>(), 3..6);
        let mut r = rng();
        for _ in 0..100 {
            let v = strat.generate(&mut r);
            assert!((3..6).contains(&v.len()));
        }
    }
}
