//! Collection strategies (`proptest::collection`).

use std::ops::Range;

use crate::strategy::{Strategy, VecStrategy};

/// Strategy for `Vec`s of `element` values with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}
