//! Deterministic case generation for the [`proptest!`](crate::proptest) macro.

/// Configuration of a property-test run (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for API compatibility; this stand-in never rejects inputs.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 1024 }
    }
}

/// Deterministic per-case RNG (xoshiro256++ seeded from the test path and
/// case index; `PROPTEST_SEED` perturbs the whole run when set).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// RNG for case `case` of the test named `path`.
    pub fn for_case(path: &str, case: u64) -> TestRng {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in path.as_bytes() {
            seed ^= *b as u64;
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        if let Ok(env) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = env.parse::<u64>() {
                seed = seed.wrapping_add(extra.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            }
        }
        seed = seed.wrapping_add(case.wrapping_mul(0xA24B_AED4_963E_E407));
        // SplitMix64 state expansion.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty draw");
        self.next_u64() % bound
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_differ_but_replay_identically(/* determinism */) {
        let mut a = TestRng::for_case("mod::test", 0);
        let mut b = TestRng::for_case("mod::test", 0);
        let mut c = TestRng::for_case("mod::test", 1);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut rng = TestRng::for_case("x", 3);
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
            let f = rng.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
