//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro and type surface the workspace's benchmarks use
//! (`criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `Bencher::{iter, iter_batched}`, `Throughput`, `BatchSize`) with a
//! deliberately small measurement loop: a short warm-up, a time-boxed
//! sample, and a one-line mean report. Good enough to exercise every hot
//! path and catch regressions by eye; not a statistics engine.

use std::time::{Duration, Instant};

/// How much work to time per measurement batch (accepted for API parity;
/// the stand-in sizes batches by wall-clock budget instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input for every iteration.
    PerIteration,
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Logical elements per iteration.
    Elements(u64),
}

/// Wall-clock budget per benchmark (keeps `cargo test`/`cargo bench` fast).
const MEASURE_BUDGET: Duration = Duration::from_millis(20);
const WARMUP_ITERS: u32 = 3;
const MAX_ITERS: u32 = 1000;

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    fn new() -> Self {
        Bencher { iters: 0, total: Duration::ZERO }
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine());
        }
        let started = Instant::now();
        let mut iters = 0u64;
        while started.elapsed() < MEASURE_BUDGET && iters < MAX_ITERS as u64 {
            std::hint::black_box(routine());
            iters += 1;
        }
        self.iters = iters.max(1);
        self.total = started.elapsed();
    }

    /// Times `routine` over inputs produced by `setup` (setup excluded).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        let mut iters = 0u64;
        let mut total = Duration::ZERO;
        while total < MEASURE_BUDGET && iters < MAX_ITERS as u64 {
            let input = setup();
            let started = Instant::now();
            std::hint::black_box(routine(input));
            total += started.elapsed();
            iters += 1;
        }
        self.iters = iters.max(1);
        self.total = total;
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        let mean_ns = self.total.as_nanos() as f64 / self.iters as f64;
        let rate = match throughput {
            Some(Throughput::Bytes(b)) if mean_ns > 0.0 => {
                let mib_s = b as f64 / (1 << 20) as f64 / (mean_ns / 1e9);
                format!("  ({mib_s:.1} MiB/s)")
            }
            Some(Throughput::Elements(e)) if mean_ns > 0.0 => {
                let ops_s = e as f64 / (mean_ns / 1e9);
                format!("  ({ops_s:.0} elem/s)")
            }
            _ => String::new(),
        };
        println!("bench {name:<40} {mean_ns:>12.0} ns/iter{rate}");
    }
}

/// A named cluster of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.into()), self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _criterion: self }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&id.into(), None);
        self
    }
}

/// Re-export of `std::hint::black_box`, as in real criterion.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(4096));
        let mut runs = 0u64;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        assert!(runs > 0, "routine must have executed");
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut b = Bencher::new();
        let mut setups = 0u64;
        b.iter_batched(
            || {
                setups += 1;
                vec![0u8; 64]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert!(setups > b.iters, "one warm-up setup plus one per iteration");
    }
}
