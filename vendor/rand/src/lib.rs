//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Implements the exact surface the workspace uses — `Rng::{gen, gen_range,
//! gen_bool, fill_bytes}`, `SeedableRng::seed_from_u64` and
//! `rngs::StdRng` — over a xoshiro256++ generator seeded with SplitMix64.
//! Deterministic for a given seed, which is all the simulation needs.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Types samplable uniformly over their whole domain (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u128 + 1;
                start + (((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128
                    + (((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span) as i128)
                    as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level sampling interface (blanket-implemented for every generator).
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u16 = rng.gen_range(10..20u16);
            assert!((10..20).contains(&v));
            let w: i64 = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "skewed bucket: {counts:?}");
        }
    }
}
