//! NVCache reproduction — umbrella crate.
//!
//! Re-exports every workspace crate so examples and integration tests can
//! address the full stack through one dependency. See the crate-level docs of
//! each member for details:
//!
//! * [`nvcache`] — the paper's contribution (NVMM write log + read cache).
//! * [`vfs`] — the POSIX boundary and baseline file systems.
//! * [`nvmm`], [`blockdev`] — the hardware simulators.
//! * [`rocklet`], [`sqlight`], [`fiosim`] — the legacy-application stand-ins.
//! * [`traffic`] — deterministic multi-tenant trace replay.
//! * [`simclock`] — virtual time.

pub use blockdev;
pub use fiosim;
pub use nvcache;
pub use nvmm;
pub use rocklet;
pub use simclock;
pub use sqlight;
pub use traffic;
pub use vfs;
