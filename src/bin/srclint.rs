//! `srclint` — the workspace's hand-rolled source lint (no external deps).
//!
//! The simulation crates run on **virtual time** (`simclock`): any wall-clock
//! API in non-test code silently breaks determinism and the identity oracles,
//! and a stray `unwrap()`/`expect()` in library code turns a recoverable
//! inner-I/O condition into a panic. The compiler cannot enforce either rule,
//! so CI runs this scanner over the virtual-time crates:
//!
//! * **deny wall-clock**: `Instant::now`, `SystemTime`, `thread::sleep`;
//! * **deny `unwrap()`/`expect()`** outside the reviewed allowlist below.
//!
//! Both rules apply to non-test code only — `#[cfg(test)] mod … { … }`
//! blocks, `tests.rs`/`*_tests.rs` files and doc/line comments are skipped.
//! Exit status is non-zero when any violation is found, so the CI lint job
//! fails the build.

use std::path::{Path, PathBuf};

/// Crates whose sources must stay wall-clock-free.
const CRATES: &[&str] = &["core", "nvmm", "fiosim", "traffic", "simclock"];

/// APIs that read or consume wall-clock time.
const WALL_CLOCK: &[&str] = &["Instant::now", "SystemTime", "thread::sleep"];

/// Reviewed `(file suffix, line needle)` pairs where `unwrap()`/`expect()`
/// in non-test code is deliberate: each one documents an invariant whose
/// violation is a bug in *this* workspace, not a recoverable condition.
/// Keep the needle specific enough to pin one call site.
const ALLOW_PANIC: &[(&str, &str)] = &[
    // Invariant messages: a failure here is internal state corruption.
    ("core/src/cleanup.rs", "entry references a closed fd"),
    ("core/src/cache.rs", "recover mode always produces a report"),
    ("core/src/cache.rs", "writable open creates the radix tree"),
    ("core/src/cache.rs", "just installed"),
    ("core/src/squeue.rs", "writable open creates the radix tree"),
    ("core/src/squeue.rs", "fd checked at submission"),
    // Thread spawning: no meaningful recovery from a failed spawn at mount.
    ("core/src/cache.rs", "spawn cleanup worker"),
    ("core/src/cache.rs", "spawn migration worker"),
    // Fixed-width header/field decoding: the slices are always 4/8 bytes.
    ("core/src/recovery.rs", ".try_into().expect("),
    // Crash simulation requires the durable mirror the profile enabled.
    ("nvmm/src/dimm.rs", "crash semantics unavailable"),
    // Histogram bin guaranteed set on the taken branch.
    ("fiosim/src/lib.rs", "bin set"),
    // Reading back the completion entry pushed one statement earlier.
    ("fiosim/src/uring.rs", "just recorded"),
    // A worker is only `ready` while its script has a next op.
    ("traffic/src/engine.rs", "ready worker has an op"),
    // std Mutex poisoning is unreachable: no panic can happen under these
    // locks (pure arithmetic), and simclock cannot depend on parking_lot.
    ("simclock/src/resource.rs", "channel lock"),
    ("simclock/src/resource.rs", "at least one channel"),
];

fn main() {
    let root = workspace_root();
    let mut violations: Vec<String> = Vec::new();
    let mut scanned = 0usize;
    for krate in CRATES {
        let src = root.join("crates").join(krate).join("src");
        for file in rs_files(&src) {
            scanned += 1;
            scan_file(&root, &file, &mut violations);
        }
    }
    if violations.is_empty() {
        println!("srclint: {scanned} files clean");
        return;
    }
    eprintln!("srclint: {} violation(s):", violations.len());
    for v in &violations {
        eprintln!("  {v}");
    }
    std::process::exit(1);
}

/// The workspace root: `CARGO_MANIFEST_DIR` when cargo provides it (it
/// always does for `cargo run --bin srclint`), the current directory
/// otherwise.
fn workspace_root() -> PathBuf {
    std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// All `.rs` files under `dir`, recursively, in sorted order (deterministic
/// reports), excluding whole-file test modules (`tests.rs`, `*_tests.rs`).
fn rs_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            out.extend(rs_files(&path));
            continue;
        }
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        let is_test_file = name == "tests.rs" || name.ends_with("_tests.rs");
        if name.ends_with(".rs") && !is_test_file {
            out.push(path);
        }
    }
    out
}

fn scan_file(root: &Path, path: &Path, violations: &mut Vec<String>) {
    let Ok(text) = std::fs::read_to_string(path) else {
        violations.push(format!("{}: unreadable", path.display()));
        return;
    };
    let rel = path.strip_prefix(root).unwrap_or(path);
    let rel = rel.to_string_lossy().replace('\\', "/");

    // Brace-tracked exclusion of `#[cfg(test)] mod … { … }` (and
    // `#[cfg(all(test, …))]`) blocks: after the attribute, skip until the
    // module's braces balance again. A plain block scanner is enough — the
    // tree never puts an unbalanced brace in a string literal at module
    // scope, and rustfmt keeps the attribute and `mod` adjacent.
    let mut in_test_block = false;
    let mut depth: i32 = 0;
    let mut pending_test_attr = false;
    let mut in_block_comment = false;

    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comments(raw, &mut in_block_comment);
        let trimmed = line.trim();

        if in_test_block {
            depth += brace_delta(&line);
            if depth <= 0 {
                in_test_block = false;
            }
            continue;
        }
        if trimmed.starts_with("#[cfg(test)") || trimmed.starts_with("#[cfg(all(test") {
            pending_test_attr = true;
            continue;
        }
        if pending_test_attr {
            // The attribute may gate a `use`, an item, or the test module
            // itself; only a `mod` opens a block we must skip. An attribute
            // stack (`#[cfg(test)]` + `#[allow(…)]`) keeps the flag alive.
            if trimmed.starts_with("mod ") || trimmed.starts_with("pub mod ") {
                if trimmed.ends_with(';') {
                    pending_test_attr = false; // out-of-line test module file
                } else {
                    in_test_block = true;
                    pending_test_attr = false;
                    depth = brace_delta(&line);
                    if depth <= 0 {
                        in_test_block = false;
                    }
                }
                continue;
            }
            if !trimmed.starts_with("#[") {
                pending_test_attr = false;
            }
            continue;
        }

        for api in WALL_CLOCK {
            if line.contains(api) {
                violations.push(format!(
                    "{rel}:{}: wall-clock API `{api}` in virtual-time code",
                    lineno + 1
                ));
            }
        }
        let panicky = line.contains(".unwrap()") || line.contains(".expect(");
        if panicky {
            let allowed = ALLOW_PANIC
                .iter()
                .any(|(file, needle)| rel.ends_with(file) && raw.contains(needle));
            if !allowed {
                violations.push(format!(
                    "{rel}:{}: unwrap()/expect() in non-test code (add a reviewed \
                     allowlist entry in src/bin/srclint.rs if deliberate)",
                    lineno + 1
                ));
            }
        }
    }
}

/// Strips line comments and (statefully) block comments; string literal
/// contents are left in place, which is fine for the needles we search.
fn strip_comments(line: &str, in_block: &mut bool) -> String {
    let mut out = String::with_capacity(line.len());
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if *in_block {
            if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                *in_block = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        if bytes[i] == b'/' && i + 1 < bytes.len() {
            if bytes[i + 1] == b'/' {
                break; // line comment (incl. doc comments)
            }
            if bytes[i + 1] == b'*' {
                *in_block = true;
                i += 2;
                continue;
            }
        }
        out.push(bytes[i] as char);
        i += 1;
    }
    out
}

fn brace_delta(line: &str) -> i32 {
    let mut d = 0;
    for c in line.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}
